// gvex::ingest — the live write path of the serving tier: a resident
// StreamGVEX solver (one per label) behind the ExplanationServer, fed by
// kIngest requests on a dedicated worker thread.
//
// Architecture (DESIGN.md §15):
//
//   kIngest --> IngestManager::Submit (admission-bounded, cancellable)
//                 |  dedicated worker — never the shared query queue
//                 v
//           journal (WAL) --> StreamGvex::IngestGraph (resident state)
//                 |                   |
//          cadence checkpoints   sliding drift window
//                                      |
//                         drift >= threshold? cut gvexbundle
//                                      |
//                    ViewRegistry::InstallBundle (atomic hot-swap)
//                                      |
//                 optional FanOutPublish / ShardedPublish to followers
//
// Drift is the freshness signal: over a sliding window of recently
// ingested graphs, the fraction the resident views explain but the
// currently-served generation's patterns do not match (coverage delta),
// weighted alongside the explainability those graphs would contribute
// (influence delta). When the coverage delta crosses the threshold, the
// manager finalizes the resident views (ReducePatterns) into a bundle
// and publishes it through the registry's existing hot-swap — queries
// stay byte-identical to the old generation until the swap, then to the
// new one. Staleness seconds and drift at swap are the explanation-
// freshness SLO, recorded as "ingest.*" counters/histograms and measured
// end to end by bench_ingest.
//
// Crash-resume contract: every accepted graph hits the journal before
// the solver, and solver state checkpoints ride the same journal every
// `checkpoint_cadence` graphs. On restart with `resume`, each label's
// solver is restored from its newest checkpoint and the graph records
// past it are replayed in sequence order; StreamGVEX commits at graph
// boundaries and streams nodes deterministically, so the rebuilt
// resident views — and any bundle cut from them — are byte-identical to
// an uninterrupted run (equal content fingerprints; pinned by
// ingest_test.cc and the ingest smoke leg).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "gvex/cluster/publisher.h"
#include "gvex/cluster/shard_map.h"
#include "gvex/common/result.h"
#include "gvex/explain/config.h"
#include "gvex/explain/stream_gvex.h"
#include "gvex/ingest/journal.h"
#include "gvex/serve/protocol.h"
#include "gvex/serve/view_registry.h"

namespace gvex {
namespace ingest {

struct IngestOptions {
  std::string route = cluster::kDefaultRoute;
  /// Admission bound of the dedicated ingest queue; kIngest requests
  /// beyond it are shed with kOverloaded.
  size_t max_pending = 64;
  /// Auto-publish when the window coverage delta reaches this fraction.
  double drift_threshold = 0.25;
  /// Sliding window of recently ingested graphs the drift is computed on.
  size_t drift_window = 16;
  /// Graphs between solver-state checkpoints in the journal, per label.
  size_t checkpoint_cadence = 8;
  /// Journal path ("" = no journal: ingest is in-memory only and a crash
  /// loses the resident state).
  std::string journal_path;
  /// Restore from an existing journal instead of truncating it.
  bool resume = false;
  /// Don't auto-publish before this many graphs were accepted.
  size_t min_publish_graphs = 1;
  /// Solver configuration for the resident StreamGvex instances.
  Configuration config;
  /// Fan-out after a local install: every auto-published bundle is also
  /// shipped to these followers (publisher.h), or sliced over the shard
  /// map when one is set. Fan-out failures are counted and logged but
  /// never roll back the local swap.
  std::vector<serve::Endpoint> targets;
  std::shared_ptr<const cluster::ShardMap> shard_map;
  cluster::PublishOptions publish;
};

/// Point-in-time ingest state for kHealth rows, stats, and the CLI.
struct IngestInfo {
  bool running = false;
  uint64_t pending = 0;
  uint64_t accepted = 0;
  uint64_t duplicates = 0;
  uint64_t infeasible = 0;
  uint64_t errors = 0;
  uint64_t published = 0;
  uint64_t replayed = 0;
  uint64_t resident_graphs = 0;
  uint64_t next_seq = 1;
  uint64_t generation = 0;  ///< last locally published generation
  double drift = 0.0;       ///< current window coverage delta
  double influence_delta = 0.0;
  uint64_t staleness_ms = 0;  ///< since the last publish (or Start)
};

class IngestManager {
 public:
  /// `registry` receives the auto-published generations; `model` is the
  /// classifier the resident solvers explain against (required).
  IngestManager(serve::ViewRegistry* registry,
                std::shared_ptr<const GcnClassifier> model,
                IngestOptions options);
  ~IngestManager();

  IngestManager(const IngestManager&) = delete;
  IngestManager& operator=(const IngestManager&) = delete;

  /// Open/replay the journal and spawn the ingest worker. Not idempotent.
  Status Start();

  /// Stop accepting, fail queued items, join the worker. Idempotent.
  void Stop();

  /// Admission point for kIngest. The future resolves when the dedicated
  /// worker has journaled and processed the graph (or immediately on
  /// shed/reject). `req.id` doubles as the idempotency key: a non-zero id
  /// already journaled answers "duplicate" without re-feeding, which is
  /// what makes client retries across a server crash safe. Control verbs
  /// ride the same entry point: no graph + text "publish" forces a bundle
  /// cut, text "status" reports IngestInfo.
  std::future<serve::Response> Submit(serve::Request req);

  /// Force a cut+publish of the resident views (runs on the worker).
  /// Returns the new local generation.
  Result<uint64_t> PublishNow();

  IngestInfo Info() const;
  const IngestOptions& options() const { return options_; }

 private:
  struct WindowEntry {
    ClassLabel label = -1;
    Graph graph;
    double explainability = 0.0;
  };

  struct Item {
    enum class Kind { kGraph, kPublish, kStatus };
    Kind kind = Kind::kGraph;
    serve::Request req;
    std::promise<serve::Response> promise;
    std::chrono::steady_clock::time_point deadline{};
    bool has_deadline = false;
  };

  void WorkerLoop();
  serve::Response ProcessGraph(const serve::Request& req);
  serve::Response ProcessPublish(const serve::Request& req);
  serve::Response ProcessStatus(const serve::Request& req);
  /// Worker-thread only: solver for `label`, created on first sight.
  StreamGvex* SolverFor(ClassLabel label);
  /// Worker-thread only: recompute window drift against the currently-
  /// served generation and store it for Info().
  void UpdateDrift();
  /// Worker-thread only: cut + install + optional fan-out. Returns the
  /// new local generation.
  Result<uint64_t> Publish();
  Status ReplayJournal();
  std::string FormatDriftBp() const;

  serve::ViewRegistry* registry_;
  std::shared_ptr<const GcnClassifier> model_;
  IngestOptions options_;

  // Worker-owned state (no lock: only the ingest worker touches it after
  // Start's replay).
  std::map<ClassLabel, std::unique_ptr<StreamGvex>> solvers_;
  std::unique_ptr<IngestJournal> journal_;
  std::set<uint64_t> seen_ids_;
  std::deque<WindowEntry> window_;
  std::atomic<uint64_t> next_seq_{1};  ///< written by worker, read by Info()
  uint64_t accepted_since_publish_ = 0;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::unique_ptr<Item>> queue_;
  bool started_ = false;
  bool stopping_ = false;
  // Shared stats, guarded by mu_.
  uint64_t accepted_ = 0;
  uint64_t duplicates_ = 0;
  uint64_t infeasible_ = 0;
  uint64_t errors_ = 0;
  uint64_t published_ = 0;
  uint64_t replayed_ = 0;
  uint64_t resident_graphs_ = 0;
  uint64_t last_generation_ = 0;
  double drift_ = 0.0;
  double influence_delta_ = 0.0;
  std::chrono::steady_clock::time_point last_publish_{};

  std::thread worker_;
};

}  // namespace ingest
}  // namespace gvex
