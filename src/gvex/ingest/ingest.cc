#include "gvex/ingest/ingest.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "gvex/common/failpoint.h"
#include "gvex/common/logging.h"
#include "gvex/matching/vf2.h"
#include "gvex/obs/obs.h"

namespace gvex {
namespace ingest {

namespace {

serve::Response MakeError(uint64_t id, const Status& status) {
  serve::Response resp;
  resp.id = id;
  resp.code = status.code();
  resp.message = status.message();
  return resp;
}

uint64_t DriftBasisPoints(double drift) {
  return static_cast<uint64_t>(std::lround(std::max(0.0, drift) * 10000.0));
}

// Does any pattern of the served view match into `g`? Bounded VF2 under
// subgraph (monomorphism) semantics — patterns are small, the bound only
// guards the adversarial worst case.
bool ServedCovers(const ExplanationView* view, const Graph& g) {
  if (view == nullptr) return false;
  MatchOptions opts;
  opts.semantics = MatchSemantics::kSubgraph;
  opts.max_matches = 1;
  opts.max_steps = 50000;
  for (const Graph& p : view->patterns) {
    if (Vf2Matcher::HasMatch(p, g, opts)) return true;
  }
  return false;
}

}  // namespace

IngestManager::IngestManager(serve::ViewRegistry* registry,
                             std::shared_ptr<const GcnClassifier> model,
                             IngestOptions options)
    : registry_(registry),
      model_(std::move(model)),
      options_(std::move(options)) {}

IngestManager::~IngestManager() { Stop(); }

Status IngestManager::Start() {
  if (model_ == nullptr) {
    return Status::InvalidArgument("ingest requires a classifier model");
  }
  if (!cluster::IsValidRouteName(options_.route)) {
    return Status::InvalidArgument("invalid ingest route '" + options_.route +
                                   "'");
  }
  if (options_.drift_window == 0) options_.drift_window = 1;
  if (options_.checkpoint_cadence == 0) options_.checkpoint_cadence = 1;
  if (!options_.journal_path.empty()) {
    GVEX_ASSIGN_OR_RETURN(
        journal_, IngestJournal::Open(options_.journal_path, options_.resume));
    GVEX_RETURN_NOT_OK(ReplayJournal());
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return Status::FailedPrecondition("ingest already started");
  started_ = true;
  stopping_ = false;
  last_publish_ = std::chrono::steady_clock::now();
  worker_ = std::thread([this] { WorkerLoop(); });
  return Status::OK();
}

void IngestManager::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
  std::lock_guard<std::mutex> lock(mu_);
  started_ = false;
  // Fail whatever the worker left behind rather than hanging clients.
  for (auto& item : queue_) {
    item->promise.set_value(MakeError(
        item->req.id, Status::FailedPrecondition("ingest stopped")));
  }
  queue_.clear();
}

Status IngestManager::ReplayJournal() {
  const IngestReplay& replay = journal_->replay();
  std::map<ClassLabel, uint64_t> ckpt_seq;
  for (const auto& [label, entry] : replay.checkpoints) {
    auto solver = std::make_unique<StreamGvex>(model_.get(), options_.config);
    GVEX_RETURN_NOT_OK(solver->Restore(entry.second));
    ckpt_seq[label] = entry.first;
    solvers_[label] = std::move(solver);
  }
  uint64_t replayed = 0, accepted = 0, infeasible = 0;
  uint64_t resident = 0;
  for (const auto& [label, solver] : solvers_) {
    resident += solver->resident_graphs();
  }
  for (const IngestRecord& rec : replay.graphs) {
    auto it = ckpt_seq.find(rec.label);
    if (it != ckpt_seq.end() && rec.seq <= it->second) continue;
    StreamGvex* solver = SolverFor(rec.label);
    double explainability = 0.0;
    Status st =
        solver->IngestGraph(rec.graph, rec.seq, rec.label, &explainability);
    ++replayed;
    if (st.ok()) {
      ++accepted;
      ++resident;
      window_.push_back({rec.label, rec.graph, explainability});
      if (window_.size() > options_.drift_window) window_.pop_front();
    } else if (st.IsInfeasible()) {
      ++infeasible;
      ++resident;
    } else {
      // Deterministic replay hits the same error the live run did; the
      // record stays journaled and the resident state stays consistent.
      GVEX_LOG(Warning) << "ingest replay: seq " << rec.seq << " failed: "
                        << st.ToString();
    }
  }
  seen_ids_ = replay.client_ids;
  next_seq_ = replay.next_seq;
  GVEX_COUNTER_ADD("ingest.replayed", replayed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    replayed_ = replayed;
    accepted_ = accepted;
    infeasible_ = infeasible;
    resident_graphs_ = resident;
  }
  if (replayed > 0 || !replay.checkpoints.empty()) {
    GVEX_LOG(Info) << "ingest journal " << journal_->path() << ": resumed "
                   << resident << " resident graphs (" << replayed
                   << " replayed past " << replay.checkpoints.size()
                   << " checkpoints)";
  }
  return Status::OK();
}

std::future<serve::Response> IngestManager::Submit(serve::Request req) {
  GVEX_COUNTER_INC("ingest.requests");
  auto item = std::make_unique<Item>();
  item->req = std::move(req);
  std::future<serve::Response> future = item->promise.get_future();
  if (!item->req.has_graph) {
    if (item->req.text == "publish") {
      item->kind = Item::Kind::kPublish;
    } else if (item->req.text == "status") {
      item->kind = Item::Kind::kStatus;
    } else {
      item->promise.set_value(MakeError(
          item->req.id,
          Status::InvalidArgument(
              "ingest needs a graph, or text 'publish'/'status'")));
      return future;
    }
  } else if (item->req.label < 0) {
    item->promise.set_value(MakeError(
        item->req.id, Status::InvalidArgument("ingest requires a label")));
    return future;
  }
  if (item->req.deadline_ms > 0) {
    item->has_deadline = true;
    item->deadline = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(item->req.deadline_ms);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stopping_) {
      item->promise.set_value(MakeError(
          item->req.id, Status::FailedPrecondition("ingest not running")));
      return future;
    }
    // Control verbs bypass the bound: they carry no payload and must not
    // be shed behind the very backlog they are asked to observe or cut.
    if (item->kind == Item::Kind::kGraph &&
        queue_.size() >= options_.max_pending) {
      GVEX_COUNTER_INC("ingest.shed");
      item->promise.set_value(MakeError(
          item->req.id,
          Status::Overloaded("ingest queue full (" +
                             std::to_string(options_.max_pending) + ")")));
      return future;
    }
    queue_.push_back(std::move(item));
  }
  cv_.notify_one();
  return future;
}

void IngestManager::WorkerLoop() {
  for (;;) {
    std::unique_ptr<Item> item;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;  // Stop() fails the remaining queue
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    // Queued-expiry drop: the cancellable half of the admission contract.
    if (item->has_deadline &&
        std::chrono::steady_clock::now() >= item->deadline) {
      GVEX_COUNTER_INC("ingest.deadline_miss");
      item->promise.set_value(MakeError(
          item->req.id, Status::Timeout("ingest deadline expired in queue")));
      continue;
    }
    GVEX_FAILPOINT_NOTIFY("ingest.feed");
    serve::Response resp;
    switch (item->kind) {
      case Item::Kind::kGraph:
        resp = ProcessGraph(item->req);
        break;
      case Item::Kind::kPublish:
        resp = ProcessPublish(item->req);
        break;
      case Item::Kind::kStatus:
        resp = ProcessStatus(item->req);
        break;
    }
    item->promise.set_value(std::move(resp));
  }
}

StreamGvex* IngestManager::SolverFor(ClassLabel label) {
  auto it = solvers_.find(label);
  if (it == solvers_.end()) {
    it = solvers_
             .emplace(label, std::make_unique<StreamGvex>(model_.get(),
                                                          options_.config))
             .first;
  }
  return it->second.get();
}

void IngestManager::UpdateDrift() {
  double drift = 0.0, influence = 0.0;
  if (!window_.empty()) {
    auto snap = registry_->Snapshot(options_.route);
    size_t uncovered = 0;
    for (const WindowEntry& e : window_) {
      const ExplanationView* served =
          snap != nullptr ? snap->views.ForLabel(e.label) : nullptr;
      if (!ServedCovers(served, e.graph)) {
        ++uncovered;
        influence += e.explainability;
      }
    }
    drift = static_cast<double>(uncovered) /
            static_cast<double>(window_.size());
    influence /= static_cast<double>(window_.size());
  }
  std::lock_guard<std::mutex> lock(mu_);
  drift_ = drift;
  influence_delta_ = influence;
}

serve::Response IngestManager::ProcessGraph(const serve::Request& req) {
  GVEX_LATENCY_US("ingest.feed_us");
  serve::Response resp;
  resp.id = req.id;
  if (req.id != 0 && seen_ids_.count(req.id) != 0) {
    GVEX_COUNTER_INC("ingest.duplicates");
    std::lock_guard<std::mutex> lock(mu_);
    ++duplicates_;
    resp.text = "duplicate id=" + std::to_string(req.id);
    return resp;
  }
  const uint64_t seq = next_seq_;
  if (journal_ != nullptr) {
    Status st = journal_->AppendGraph(seq, req.id, req.label, req.graph);
    if (!st.ok()) {
      GVEX_COUNTER_INC("ingest.errors");
      std::lock_guard<std::mutex> lock(mu_);
      ++errors_;
      return MakeError(req.id, st);
    }
  }
  // The graph is durable: consume the sequence number and the dedup key
  // whatever the solver says, so a replay and a client retry both land on
  // exactly one feed.
  next_seq_ = seq + 1;
  if (req.id != 0) seen_ids_.insert(req.id);

  StreamGvex* solver = SolverFor(req.label);
  double explainability = 0.0;
  Status st = solver->IngestGraph(req.graph, seq, req.label, &explainability);
  bool published = false;
  uint64_t generation = 0;
  if (st.ok()) {
    GVEX_COUNTER_INC("ingest.accepted");
    window_.push_back({req.label, req.graph, explainability});
    if (window_.size() > options_.drift_window) window_.pop_front();
    uint64_t total_accepted;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++accepted_;
      ++resident_graphs_;
      total_accepted = accepted_;
    }
    ++accepted_since_publish_;
    if (journal_ != nullptr &&
        solver->resident_graphs() % options_.checkpoint_cadence == 0) {
      Status ck = journal_->AppendCheckpoint(seq, req.label,
                                             solver->Snapshot());
      if (!ck.ok()) {
        GVEX_LOG(Warning) << "ingest: checkpoint failed (" << ck.ToString()
                          << "); replay will take the long way";
      }
    }
    UpdateDrift();
    double drift;
    {
      std::lock_guard<std::mutex> lock(mu_);
      drift = drift_;
    }
    if (drift >= options_.drift_threshold &&
        total_accepted >= options_.min_publish_graphs &&
        accepted_since_publish_ > 0) {
      Result<uint64_t> gen = Publish();
      if (gen.ok()) {
        published = true;
        generation = *gen;
      } else {
        GVEX_LOG(Warning) << "ingest: drift-triggered publish failed: "
                          << gen.status().ToString();
      }
    }
  } else if (st.IsInfeasible()) {
    GVEX_COUNTER_INC("ingest.infeasible");
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++infeasible_;
      ++resident_graphs_;
    }
    resp.support = seq;
    resp.text = "infeasible seq=" + std::to_string(seq) +
                " label=" + std::to_string(req.label);
    return resp;
  } else {
    GVEX_COUNTER_INC("ingest.errors");
    std::lock_guard<std::mutex> lock(mu_);
    ++errors_;
    return MakeError(req.id, st);
  }
  resp.support = seq;
  std::ostringstream text;
  text << "ingested seq=" << seq << " label=" << req.label
       << " resident=" << solver->resident_graphs()
       << " drift=" << FormatDriftBp() << "bp";
  if (published) {
    text << " published generation=" << generation
         << " fingerprint=" << registry_->fingerprint(options_.route);
  }
  resp.text = text.str();
  return resp;
}

Result<uint64_t> IngestManager::Publish() {
  GVEX_FAILPOINT_RETURN("ingest.publish");
  const auto now = std::chrono::steady_clock::now();
  double drift_at_swap, influence_at_swap;
  std::chrono::steady_clock::time_point last;
  {
    std::lock_guard<std::mutex> lock(mu_);
    drift_at_swap = drift_;
    influence_at_swap = influence_delta_;
    last = last_publish_;
  }

  cluster::ViewBundle bundle;
  bundle.route = options_.route;
  bundle.model = model_;
  for (const auto& [label, solver] : solvers_) {  // sorted by label
    if (!solver->in_progress()) continue;
    GVEX_ASSIGN_OR_RETURN(ExplanationView view, solver->ResidentView());
    if (view.subgraphs.empty()) continue;
    bundle.views.views.push_back(std::move(view));
  }
  if (bundle.views.views.empty()) {
    return Status::FailedPrecondition("no resident views to publish");
  }

  GVEX_RETURN_NOT_OK(registry_->InstallBundle(bundle));
  registry_->WarmMatchCache(options_.route);
  const uint64_t generation = registry_->generation(options_.route);
  GVEX_COUNTER_INC("ingest.publishes");
  const uint64_t staleness_ms = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(now - last)
          .count());
  GVEX_HISTOGRAM_RECORD("ingest.staleness_at_swap_ms", staleness_ms);
  GVEX_HISTOGRAM_RECORD("ingest.drift_at_swap_bp",
                        DriftBasisPoints(drift_at_swap));
  GVEX_HISTOGRAM_RECORD(
      "ingest.influence_at_swap_u",
      static_cast<uint64_t>(std::max(0.0, influence_at_swap) * 1e6));
  accepted_since_publish_ = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++published_;
    last_generation_ = generation;
    last_publish_ = now;
  }
  // The served generation just became the resident one; refresh the
  // freshness signal so Info() and the next trigger see reality.
  UpdateDrift();

  // Optional follower fan-out, after (and never instead of) the local
  // swap. A failed or partial fan-out is an SLO event, not a rollback.
  if (options_.shard_map != nullptr || !options_.targets.empty()) {
    bundle.generation = generation;
    Result<std::string> fp = cluster::BundleFingerprint(bundle);
    if (fp.ok()) bundle.fingerprint = *fp;
    cluster::PublishOptions popts = options_.publish;
    popts.targets = options_.targets;
    Result<cluster::PublishReport> report =
        options_.shard_map != nullptr
            ? cluster::ShardedPublish(bundle, *options_.shard_map, popts)
            : cluster::FanOutPublish(bundle, popts);
    Status agg = report.ok() ? report->Aggregate() : report.status();
    if (!agg.ok()) {
      GVEX_COUNTER_INC("ingest.fanout_failures");
      GVEX_LOG(Warning) << "ingest: follower fan-out for generation "
                        << generation << " failed: " << agg.ToString();
    }
  }
  return generation;
}

serve::Response IngestManager::ProcessPublish(const serve::Request& req) {
  serve::Response resp;
  resp.id = req.id;
  Result<uint64_t> gen = Publish();
  if (!gen.ok()) {
    GVEX_COUNTER_INC("ingest.publish_failures");
    return MakeError(req.id, gen.status());
  }
  resp.support = *gen;
  resp.text = "published generation=" + std::to_string(*gen) +
              " fingerprint=" + registry_->fingerprint(options_.route) +
              " drift=" + FormatDriftBp() + "bp";
  return resp;
}

serve::Response IngestManager::ProcessStatus(const serve::Request& req) {
  serve::Response resp;
  resp.id = req.id;
  IngestInfo info = Info();
  std::ostringstream text;
  text << "ingesting route=" << options_.route << " pending=" << info.pending
       << " accepted=" << info.accepted << " duplicates=" << info.duplicates
       << " infeasible=" << info.infeasible << " errors=" << info.errors
       << " published=" << info.published << " replayed=" << info.replayed
       << " resident=" << info.resident_graphs
       << " next_seq=" << info.next_seq << " generation=" << info.generation
       << " drift=" << DriftBasisPoints(info.drift)
       << "bp staleness_ms=" << info.staleness_ms;
  resp.text = text.str();
  return resp;
}

Result<uint64_t> IngestManager::PublishNow() {
  serve::Request req;
  req.type = serve::RequestType::kIngest;
  req.text = "publish";
  serve::Response resp = Submit(std::move(req)).get();
  GVEX_RETURN_NOT_OK(resp.ToStatus());
  return resp.support;
}

std::string IngestManager::FormatDriftBp() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::to_string(DriftBasisPoints(drift_));
}

IngestInfo IngestManager::Info() const {
  std::lock_guard<std::mutex> lock(mu_);
  IngestInfo info;
  info.running = started_ && !stopping_;
  info.pending = queue_.size();
  info.accepted = accepted_;
  info.duplicates = duplicates_;
  info.infeasible = infeasible_;
  info.errors = errors_;
  info.published = published_;
  info.replayed = replayed_;
  info.resident_graphs = resident_graphs_;
  info.next_seq = next_seq_;
  info.generation = last_generation_;
  info.drift = drift_;
  info.influence_delta = influence_delta_;
  if (info.running) {
    info.staleness_ms = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - last_publish_)
            .count());
  }
  return info;
}

}  // namespace ingest
}  // namespace gvex
