#include "gvex/ingest/journal.h"

#include <sstream>

#include "gvex/common/failpoint.h"
#include "gvex/common/io_util.h"
#include "gvex/common/logging.h"
#include "gvex/explain/snapshot_io.h"
#include "gvex/graph/graph_io.h"
#include "gvex/obs/obs.h"

namespace gvex {
namespace ingest {

namespace {
constexpr const char* kMagic = "gvexingest-v1";
}  // namespace

Result<std::unique_ptr<IngestJournal>> IngestJournal::Open(
    const std::string& path, bool resume) {
  std::unique_ptr<IngestJournal> journal(new IngestJournal);
  journal->path_ = path;

  bool have_valid_file = false;
  if (resume) {
    std::ifstream in(path);
    if (in.is_open()) {
      std::string magic;
      if (!(in >> magic) || magic != kMagic) {
        return Status::IoError("ingest journal " + path + " has a bad magic");
      }
      have_valid_file = true;
      IngestReplay& replay = journal->replay_;
      for (;;) {
        Result<std::string> payload = ReadSection(&in);
        if (!payload.ok()) {
          // EOF is the normal end; anything else is a torn tail from a
          // crash mid-append — keep the valid prefix, drop the rest.
          if (!in.eof()) {
            GVEX_LOG(Warning)
                << "ingest journal " << path << ": discarding corrupt tail ("
                << payload.status().ToString() << ") after "
                << replay.graphs.size() << " graph records";
          }
          break;
        }
        std::istringstream rec(*payload);
        std::string tag;
        if (!(rec >> tag)) break;
        if (tag == "graph") {
          IngestRecord r;
          if (!(rec >> r.seq >> r.client_id >> r.label)) {
            GVEX_LOG(Warning) << "ingest journal " << path
                              << ": malformed graph record, stopping replay";
            break;
          }
          Result<Graph> g = ReadGraph(&rec);
          if (!g.ok()) {
            GVEX_LOG(Warning) << "ingest journal " << path
                              << ": unreadable graph record, stopping replay";
            break;
          }
          r.graph = std::move(*g);
          if (r.client_id != 0) replay.client_ids.insert(r.client_id);
          if (r.seq >= replay.next_seq) replay.next_seq = r.seq + 1;
          replay.graphs.push_back(std::move(r));
        } else if (tag == "ckpt") {
          uint64_t seq = 0;
          ClassLabel label = -1;
          if (!(rec >> seq >> label)) {
            GVEX_LOG(Warning) << "ingest journal " << path
                              << ": malformed checkpoint, stopping replay";
            break;
          }
          Result<StreamGvexSnapshot> snap = ReadStreamSnapshot(&rec);
          if (!snap.ok()) {
            GVEX_LOG(Warning) << "ingest journal " << path
                              << ": unreadable checkpoint, stopping replay";
            break;
          }
          // Newest checkpoint per label wins (records are in seq order).
          replay.checkpoints[label] = {seq, std::move(*snap)};
        } else {
          GVEX_LOG(Warning) << "ingest journal " << path
                            << ": unknown record '" << tag
                            << "', stopping replay";
          break;
        }
      }
    }
  }

  auto mode = have_valid_file ? (std::ios::out | std::ios::app)
                              : (std::ios::out | std::ios::trunc);
  journal->out_ = std::make_unique<std::ofstream>(path, mode);
  if (!journal->out_->is_open()) {
    return Status::IoError("cannot open ingest journal " + path);
  }
  if (!have_valid_file) {
    (*journal->out_) << kMagic << "\n";
    journal->out_->flush();
    if (!journal->out_->good()) {
      return Status::IoError("cannot initialize ingest journal " + path);
    }
  }
  return journal;
}

Status IngestJournal::AppendLocked(const std::string& record) {
  GVEX_RETURN_NOT_OK(WriteSection(out_.get(), record));
  out_->flush();
  if (!out_->good()) {
    return Status::IoError("ingest journal append to " + path_ + " failed");
  }
  return Status::OK();
}

Status IngestJournal::AppendGraph(uint64_t seq, uint64_t client_id,
                                  ClassLabel label, const Graph& g) {
  // Fires *before* any bytes reach the file: a simulated crash leaves the
  // journal valid, exactly like a real kill between records.
  GVEX_FAILPOINT_RETURN("ingest.journal_append");
  GVEX_COUNTER_INC("ingest.journal_appends");
  GVEX_LATENCY_US("ingest.journal_append_us");
  std::ostringstream rec;
  SetMaxPrecision(&rec);
  rec << "graph " << seq << " " << client_id << " " << label << "\n";
  GVEX_RETURN_NOT_OK(WriteGraph(g, &rec));
  std::lock_guard<std::mutex> lock(mu_);
  return AppendLocked(rec.str());
}

Status IngestJournal::AppendCheckpoint(uint64_t seq, ClassLabel label,
                                       const StreamGvexSnapshot& snap) {
  GVEX_FAILPOINT_RETURN("ingest.journal_append");
  GVEX_COUNTER_INC("ingest.checkpoints");
  GVEX_LATENCY_US("ingest.checkpoint_us");
  std::ostringstream rec;
  SetMaxPrecision(&rec);
  rec << "ckpt " << seq << " " << label << "\n";
  GVEX_RETURN_NOT_OK(WriteStreamSnapshot(snap, &rec));
  std::lock_guard<std::mutex> lock(mu_);
  return AppendLocked(rec.str());
}

}  // namespace ingest
}  // namespace gvex
