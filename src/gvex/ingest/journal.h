// Append-only journal for the live-ingest subsystem (gvex::ingest): a
// write-ahead log of every ingested graph plus periodic StreamGvex state
// checkpoints, so a kill -9'd server resumes ingest exactly where it
// stopped.
//
// Layout mirrors the explanation checkpoint (explain/checkpoint.h): a
// magic line followed by CRC32-framed records (io_util.h), tolerant of a
// torn tail. Two record kinds:
//
//   graph <seq> <client_id> <label>\n<gvexgraph-v1 bytes>
//     — one accepted ingest, journaled *before* it reaches the solver.
//   ckpt <seq> <label>\n<gvexsnap-v1 bytes>
//     — the resident solver state for `label` after the graph with
//       sequence `seq`, written every `cadence` graphs per label.
//
// Resume restores each label's solver from its newest checkpoint and
// replays only the graph records past it; because StreamGVEX commits
// state at graph boundaries and streams nodes in a fixed order, the
// rebuilt resident views are byte-identical to an uninterrupted run
// (pinned by ingest_test.cc and the ingest smoke leg).
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "gvex/common/result.h"
#include "gvex/explain/stream_gvex.h"
#include "gvex/graph/graph.h"

namespace gvex {
namespace ingest {

/// One journaled ingest, in append order.
struct IngestRecord {
  uint64_t seq = 0;        ///< server-assigned, dense per journal
  uint64_t client_id = 0;  ///< client idempotency key (0 = unkeyed)
  ClassLabel label = -1;
  Graph graph;
};

/// Everything a resume loads: the newest checkpoint per label, every
/// graph record in order, and the dedup set of client ids.
struct IngestReplay {
  /// label -> (seq of the checkpointed graph, solver state).
  std::map<ClassLabel, std::pair<uint64_t, StreamGvexSnapshot>> checkpoints;
  std::vector<IngestRecord> graphs;
  std::set<uint64_t> client_ids;
  uint64_t next_seq = 1;  ///< one past the highest journaled seq
};

class IngestJournal {
 public:
  /// Open a journal at `path`. With `resume`, existing records are loaded
  /// (tolerating a torn tail) and later appends extend the file; without,
  /// any existing file is truncated.
  static Result<std::unique_ptr<IngestJournal>> Open(const std::string& path,
                                                     bool resume);

  /// Journal one accepted graph. Flushed before returning — this is the
  /// WAL entry the crash-resume contract depends on. Fails closed.
  /// Failpoint: "ingest.journal_append".
  Status AppendGraph(uint64_t seq, uint64_t client_id, ClassLabel label,
                     const Graph& g);

  /// Journal a solver-state checkpoint (cadence handled by the caller).
  Status AppendCheckpoint(uint64_t seq, ClassLabel label,
                          const StreamGvexSnapshot& snap);

  /// Records loaded at Open time. Valid for the journal's lifetime.
  const IngestReplay& replay() const { return replay_; }
  const std::string& path() const { return path_; }

 private:
  IngestJournal() = default;

  Status AppendLocked(const std::string& record);

  mutable std::mutex mu_;
  std::string path_;
  std::unique_ptr<std::ofstream> out_;
  IngestReplay replay_;
};

}  // namespace ingest
}  // namespace gvex
