// Shared machinery for the synthetic dataset generators: one-hot feature
// assignment, Barabási–Albert base graphs, and motif planting.
#pragma once

#include <cstdint>
#include <vector>

#include "gvex/common/rng.h"
#include "gvex/graph/graph.h"

namespace gvex {

/// AddEdge that aborts on failure — for generators whose edge insertions
/// are correct by construction. Never compiled out (unlike assert).
void MustAddEdge(Graph* g, NodeId u, NodeId v,
                 EdgeType type = kDefaultEdgeType);

/// Assign each node the one-hot encoding of its type (dimension
/// `num_types`), optionally perturbed by N(0, noise) — mirroring the
/// one-hot atom/protein features of MUT/ENZ/PCQ.
void AssignOneHotFeatures(Graph* g, size_t num_types, float noise, Rng* rng);

/// Assign every node the same constant feature vector (the paper's
/// treatment of featureless datasets, §6.1).
void AssignConstantFeatures(Graph* g, size_t dim, float value = 1.0f);

/// Barabási–Albert preferential-attachment graph: `n` nodes, each new node
/// attaching `m` edges. All nodes get type `node_type`.
Graph BarabasiAlbert(size_t n, size_t m, NodeType node_type, Rng* rng);

/// Plant (disjointly add) `motif` into `g`, connecting it with
/// `bridge_edges` random edges to existing nodes. Returns the ids the motif
/// nodes received in `g`.
std::vector<NodeId> PlantMotif(Graph* g, const Graph& motif,
                               size_t bridge_edges, Rng* rng);

/// Classic motifs used by the SYN dataset of the paper (PyG generators).
Graph HouseMotif(NodeType node_type);
Graph CycleMotif(size_t length, NodeType node_type);

/// A ring of `n` nodes of `node_type` (chemistry: carbon ring for n=6).
Graph RingGraph(size_t n, NodeType node_type);

/// Uniformly random connected graph: a random spanning tree plus
/// `extra_edges` random non-duplicate edges. All nodes typed `node_type`.
Graph RandomConnectedGraph(size_t n, size_t extra_edges, NodeType node_type,
                           Rng* rng);

}  // namespace gvex
