#include <algorithm>
#include <cmath>

#include "gvex/datasets/datasets.h"

namespace gvex {
namespace datasets {
namespace {

size_t Scaled(size_t base, double scale) {
  return std::max<size_t>(2, static_cast<size_t>(std::lround(
                                 static_cast<double>(base) * scale)));
}

}  // namespace

Result<GraphDatabase> MakeByName(const std::string& code, double scale,
                                 uint64_t seed_offset) {
  if (scale <= 0.0 || scale > 1.0) {
    return Status::InvalidArgument("scale must be in (0, 1]");
  }
  if (code == "MUT") {
    MutagenicityOptions o;
    o.num_graphs = Scaled(o.num_graphs, scale);
    o.seed += seed_offset;
    return MakeMutagenicity(o);
  }
  if (code == "RED") {
    RedditOptions o;
    o.num_graphs = Scaled(o.num_graphs, scale);
    o.seed += seed_offset;
    return MakeRedditBinary(o);
  }
  if (code == "ENZ") {
    EnzymesOptions o;
    o.num_graphs = Scaled(o.num_graphs, scale);
    o.seed += seed_offset;
    return MakeEnzymes(o);
  }
  if (code == "MAL") {
    MalnetOptions o;
    o.num_graphs = Scaled(o.num_graphs, scale);
    o.seed += seed_offset;
    return MakeMalnet(o);
  }
  if (code == "PCQ") {
    PcqmOptions o;
    o.num_graphs = Scaled(o.num_graphs, scale);
    o.seed += seed_offset;
    return MakePcqm(o);
  }
  if (code == "PRO") {
    ProductsOptions o;
    o.num_subgraphs = Scaled(o.num_subgraphs, scale);
    o.seed += seed_offset;
    return MakeProducts(o);
  }
  if (code == "SYN") {
    BaMotifOptions o;
    o.num_graphs = Scaled(o.num_graphs, scale);
    o.seed += seed_offset;
    return MakeBaMotif(o);
  }
  return Status::NotFound("unknown dataset code: " + code);
}

Result<GraphDatabase> MakeByNameWithTruth(const std::string& code,
                                          double scale, uint64_t seed_offset,
                                          MotifTruth* truth) {
  if (scale <= 0.0 || scale > 1.0) {
    return Status::InvalidArgument("scale must be in (0, 1]");
  }
  if (truth == nullptr) {
    return Status::InvalidArgument("truth output must be non-null");
  }
  if (code == "SYN") {
    BaMotifOptions o;
    o.num_graphs = Scaled(o.num_graphs, scale);
    o.seed += seed_offset;
    return MakeBaMotif(o, truth);
  }
  return Status::Unimplemented("dataset " + code +
                               " does not export planted-motif ground truth");
}

std::vector<std::string> AllDatasetCodes() {
  return {"MUT", "RED", "ENZ", "MAL", "PCQ", "PRO", "SYN"};
}

}  // namespace datasets
}  // namespace gvex
