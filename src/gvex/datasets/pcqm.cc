#include "gvex/datasets/datasets.h"
#include "gvex/datasets/generator_util.h"

namespace gvex {
namespace datasets {
namespace {

// Small-molecule skeleton: carbon chain/branch of 8-14 atoms.
std::vector<NodeId> BuildSkeleton(Graph* g, Rng* rng) {
  size_t atoms = 8 + rng->NextBounded(7);
  std::vector<NodeId> carbons;
  carbons.push_back(g->AddNode(kCarbon));
  for (size_t i = 1; i < atoms; ++i) {
    NodeId c = g->AddNode(kCarbon);
    NodeId attach = carbons[rng->NextBounded(carbons.size())];
    // Grow mostly as a chain (attach to the last carbon), sometimes branch.
    if (!rng->NextBool(0.3)) attach = carbons.back();
    MustAddEdge(g, attach, c, kSingleBond);
    carbons.push_back(c);
  }
  return carbons;
}

void AttachCarboxyl(Graph* g, NodeId anchor) {
  // -C(=O)OH
  NodeId c = g->AddNode(kCarbon);
  NodeId o1 = g->AddNode(kOxygen);
  NodeId o2 = g->AddNode(kOxygen);
  NodeId h = g->AddNode(kHydrogen);
  MustAddEdge(g, anchor, c, kSingleBond);
  MustAddEdge(g, c, o1, kDoubleBond);
  MustAddEdge(g, c, o2, kSingleBond);
  MustAddEdge(g, o2, h, kSingleBond);
}

void AttachNitrile(Graph* g, NodeId anchor) {
  // -C≡N
  NodeId c = g->AddNode(kCarbon);
  NodeId n = g->AddNode(kNitrogen);
  MustAddEdge(g, anchor, c, kSingleBond);
  MustAddEdge(g, c, n, kTripleBond);
}

}  // namespace

GraphDatabase MakePcqm(const PcqmOptions& options) {
  GraphDatabase db;
  Rng rng(options.seed);
  constexpr size_t kClasses = 3;
  for (size_t i = 0; i < options.num_graphs; ++i) {
    Rng graph_rng = rng.Fork();
    const int cls = static_cast<int>(i % kClasses);
    Graph g;
    std::vector<NodeId> carbons = BuildSkeleton(&g, &graph_rng);
    NodeId anchor = carbons[graph_rng.NextBounded(carbons.size())];
    if (cls == 0) {
      AttachCarboxyl(&g, anchor);
    } else if (cls == 1) {
      AttachNitrile(&g, anchor);
    }  // class 2: plain hydrocarbon
    // A couple of hydrogens for variety.
    for (int h = 0; h < 2; ++h) {
      NodeId c = carbons[graph_rng.NextBounded(carbons.size())];
      NodeId hh = g.AddNode(kHydrogen);
      MustAddEdge(&g, c, hh, kSingleBond);
    }
    // 9-dim features: one-hot atom type (6) padded with 3 auxiliary dims.
    AssignOneHotFeatures(&g, kNumAtomTypes, options.feature_noise, &graph_rng);
    Matrix padded(g.num_nodes(), 9);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      for (size_t c = 0; c < kNumAtomTypes; ++c) {
        padded.At(v, c) = g.features().At(v, c);
      }
      padded.At(v, 6) = static_cast<float>(g.degree(v)) / 4.0f;
      padded.At(v, 7) = options.feature_noise *
                        static_cast<float>(graph_rng.NextGaussian());
      padded.At(v, 8) = 1.0f;
    }
    Status st = g.SetFeatures(std::move(padded));
    (void)st;
    db.Add(std::move(g), cls, "molecule_" + std::to_string(i));
  }
  return db;
}

}  // namespace datasets
}  // namespace gvex
