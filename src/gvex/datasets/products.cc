#include <algorithm>
#include <queue>

#include "gvex/datasets/datasets.h"
#include "gvex/datasets/generator_util.h"

namespace gvex {
namespace datasets {
namespace {

// Planted-partition power-law-ish co-purchase network. Returns the base
// graph and the community (= category) of each node.
Graph BuildCoPurchaseNetwork(size_t n, size_t communities,
                             std::vector<int>* community_of, Rng* rng) {
  Graph g;
  community_of->resize(n);
  for (size_t i = 0; i < n; ++i) {
    (*community_of)[i] = static_cast<int>(rng->NextBounded(communities));
    g.AddNode(static_cast<NodeType>((*community_of)[i]));
  }
  // Preferential attachment within community, occasional cross links.
  std::vector<std::vector<NodeId>> members(communities);
  for (size_t i = 0; i < n; ++i) {
    members[static_cast<size_t>((*community_of)[i])].push_back(
        static_cast<NodeId>(i));
  }
  for (size_t i = 0; i < n; ++i) {
    NodeId v = static_cast<NodeId>(i);
    size_t cm = static_cast<size_t>((*community_of)[i]);
    size_t links = 2 + rng->NextBounded(3);
    size_t guard = 0;
    while (links > 0 && guard < 60) {
      ++guard;
      NodeId u;
      if (rng->NextBool(0.85) && members[cm].size() > 1) {
        u = members[cm][rng->NextBounded(members[cm].size())];
      } else {
        u = static_cast<NodeId>(rng->NextBounded(n));
      }
      if (u == v || g.HasEdge(u, v)) continue;
      MustAddEdge(&g, u, v);
      --links;
    }
  }
  return g;
}

}  // namespace

GraphDatabase MakeProducts(const ProductsOptions& options) {
  GraphDatabase db;
  Rng rng(options.seed);
  std::vector<int> community_of;
  Graph base = BuildCoPurchaseNetwork(options.base_nodes,
                                      options.num_communities,
                                      &community_of, &rng);

  // Ego-subgraph sampling (§6.2 of the paper): the center node's category
  // labels the subgraph.
  for (size_t s = 0; s < options.num_subgraphs; ++s) {
    NodeId center = static_cast<NodeId>(rng.NextBounded(base.num_nodes()));
    std::vector<NodeId> hood =
        base.KHopNeighborhood(center, static_cast<unsigned>(options.ego_radius));
    if (hood.size() > options.max_subgraph_nodes) {
      // Keep the center plus a random sample of its neighborhood.
      Rng sample_rng = rng.Fork();
      sample_rng.Shuffle(&hood);
      hood.resize(options.max_subgraph_nodes);
      if (std::find(hood.begin(), hood.end(), center) == hood.end()) {
        hood[0] = center;
      }
      std::sort(hood.begin(), hood.end());
      hood.erase(std::unique(hood.begin(), hood.end()), hood.end());
    }
    Graph ego = base.InducedSubgraph(hood);
    // Features: noisy one-hot of the node's category, padded to
    // feature_dim (standing in for the 100-dim PRODUCTS features).
    Matrix f(ego.num_nodes(), options.feature_dim);
    for (NodeId v = 0; v < ego.num_nodes(); ++v) {
      size_t cat = static_cast<size_t>(ego.node_type(v));
      f.At(v, cat % options.feature_dim) = 1.0f;
      for (size_t c = 0; c < options.feature_dim; ++c) {
        f.At(v, c) += 0.05f * static_cast<float>(rng.NextGaussian());
      }
    }
    Status st = ego.SetFeatures(std::move(f));
    (void)st;
    db.Add(std::move(ego), community_of[center],
           "ego_" + std::to_string(s));
  }
  return db;
}

}  // namespace datasets
}  // namespace gvex
