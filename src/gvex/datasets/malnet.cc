#include "gvex/datasets/datasets.h"
#include "gvex/datasets/generator_util.h"

namespace gvex {
namespace datasets {
namespace {

// Function categories (node types) in the synthetic call graphs. The two
// "suspicious API" categories appear only inside family motifs — families
// sharing a category differ in calling *structure*, so the classifier
// needs both signals (a GCN cannot count cycles from uniform features;
// 1-WL needs the type anchors).
constexpr NodeType kEntry = 0;
constexpr NodeType kLib = 1;
constexpr NodeType kUserFn = 2;
constexpr NodeType kNetApi = 3;    // families 0 (rings) and 1 (dispatcher)
constexpr NodeType kCryptoApi = 4; // families 2 (chains) and 3 (diamonds)
constexpr size_t kNumFnTypes = 5;

// Base: a random call tree (directed parent -> child) plus cross calls.
Graph BaseCallGraph(size_t n, Rng* rng) {
  Graph g(/*directed=*/true);
  g.AddNode(kEntry);
  for (size_t i = 1; i < n; ++i) {
    NodeType t = rng->NextBool(0.3) ? kLib : kUserFn;
    NodeId v = g.AddNode(t);
    NodeId parent = static_cast<NodeId>(rng->NextBounded(i));
    MustAddEdge(&g, parent, v);
  }
  // Cross calls.
  size_t extra = n / 4;
  size_t guard = 0;
  while (extra > 0 && guard < 20 * n) {
    ++guard;
    NodeId u = static_cast<NodeId>(rng->NextBounded(n));
    NodeId v = static_cast<NodeId>(rng->NextBounded(n));
    if (u == v || g.HasEdge(u, v)) continue;
    MustAddEdge(&g, u, v);
    --extra;
  }
  return g;
}

// Family-specific calling motifs planted into the call graph.
void PlantFamilyMotif(Graph* g, int family, Rng* rng) {
  const size_t n = g->num_nodes();
  auto pick = [&] { return static_cast<NodeId>(rng->NextBounded(n)); };
  switch (family) {
    case 0: {  // beaconing rings: directed 3-cycles through a net API
      for (int rep = 0; rep < 3; ++rep) {
        NodeId a = g->AddNode(kUserFn);
        NodeId b = g->AddNode(kNetApi);
        NodeId c = g->AddNode(kUserFn);
        MustAddEdge(g, a, b);
        MustAddEdge(g, b, c);
        MustAddEdge(g, c, a);
        MustAddEdge(g, pick(), a);
      }
      break;
    }
    case 1: {  // net dispatcher: one hub fanning out to many net APIs
      NodeId hub = g->AddNode(kUserFn);
      MustAddEdge(g, pick(), hub);
      for (int i = 0; i < 10; ++i) {
        NodeId api = g->AddNode(kNetApi);
        MustAddEdge(g, hub, api);
      }
      break;
    }
    case 2: {  // staged payload: deep chains through crypto APIs
      for (int rep = 0; rep < 1; ++rep) {
        NodeId prev = pick();
        for (int i = 0; i < 10; ++i) {
          NodeId next = g->AddNode(i % 2 == 0 ? kCryptoApi : kUserFn);
          MustAddEdge(g, prev, next);
          prev = next;
        }
      }
      break;
    }
    case 3: {  // crypto diamonds: a calls two crypto APIs converging on d
      for (int rep = 0; rep < 3; ++rep) {
        NodeId a = g->AddNode(kUserFn);
        NodeId b = g->AddNode(kCryptoApi);
        NodeId c = g->AddNode(kCryptoApi);
        NodeId d = g->AddNode(kUserFn);
        MustAddEdge(g, a, b);
        MustAddEdge(g, a, c);
        MustAddEdge(g, b, d);
        MustAddEdge(g, c, d);
        MustAddEdge(g, pick(), a);
      }
      break;
    }
    default: {  // family 4: mutual-call pairs (directed 2-cycles), benign
      for (int rep = 0; rep < 5; ++rep) {
        NodeId a = g->AddNode(kUserFn);
        NodeId b = g->AddNode(kUserFn);
        MustAddEdge(g, a, b);
        MustAddEdge(g, b, a);
        MustAddEdge(g, pick(), a);
      }
      break;
    }
  }
}

}  // namespace

GraphDatabase MakeMalnet(const MalnetOptions& options) {
  GraphDatabase db;
  Rng rng(options.seed);
  constexpr size_t kFamilies = 5;
  for (size_t i = 0; i < options.num_graphs; ++i) {
    Rng graph_rng = rng.Fork();
    const int family = static_cast<int>(i % kFamilies);
    size_t n = options.min_functions +
               graph_rng.NextBounded(options.max_functions -
                                     options.min_functions + 1);
    Graph g = BaseCallGraph(n, &graph_rng);
    // One compact plant per graph: the max-pool readout detects presence
    // regardless of graph size, and a single motif keeps node-removal
    // counterfactuals feasible within the coverage budgets the
    // experiments sweep (redundant plants would defeat them).
    PlantFamilyMotif(&g, family, &graph_rng);
    // One-hot function-category features; the suspicious-API categories
    // stand in for import-table information real FCG pipelines attach.
    AssignOneHotFeatures(&g, kNumFnTypes, 0.0f, &graph_rng);
    db.Add(std::move(g), family,
           "malware_f" + std::to_string(family) + "_" + std::to_string(i));
  }
  return db;
}

}  // namespace datasets
}  // namespace gvex
