#include "gvex/datasets/generator_util.h"

#include <algorithm>
#include <cassert>

namespace gvex {

void MustAddEdge(Graph* g, NodeId u, NodeId v, EdgeType type) {
  Status st = g->AddEdge(u, v, type);
  if (!st.ok()) {
    std::abort();  // generator bug: invalid edge insertion
  }
}

void AssignOneHotFeatures(Graph* g, size_t num_types, float noise, Rng* rng) {
  Matrix f(g->num_nodes(), num_types);
  for (NodeId v = 0; v < g->num_nodes(); ++v) {
    size_t t = static_cast<size_t>(g->node_type(v));
    assert(t < num_types);
    f.At(v, t) = 1.0f;
    if (noise > 0.0f) {
      for (size_t c = 0; c < num_types; ++c) {
        f.At(v, c) += noise * static_cast<float>(rng->NextGaussian());
      }
    }
  }
  Status st = g->SetFeatures(std::move(f));
  assert(st.ok());
  (void)st;
}

void AssignConstantFeatures(Graph* g, size_t dim, float value) {
  g->SetDefaultFeatures(dim, value);
}

Graph BarabasiAlbert(size_t n, size_t m, NodeType node_type, Rng* rng) {
  assert(n >= m + 1 && m >= 1);
  Graph g;
  // Seed clique of m+1 nodes.
  for (size_t i = 0; i <= m; ++i) g.AddNode(node_type);
  std::vector<NodeId> endpoint_pool;  // node repeated per degree
  for (NodeId u = 0; u <= m; ++u) {
    for (NodeId v = u + 1; v <= m; ++v) {
      Status st = g.AddEdge(u, v);
      assert(st.ok());
      (void)st;
      endpoint_pool.push_back(u);
      endpoint_pool.push_back(v);
    }
  }
  for (size_t i = m + 1; i < n; ++i) {
    NodeId v = g.AddNode(node_type);
    size_t attached = 0;
    size_t guard = 0;
    while (attached < m && guard < 50 * m) {
      ++guard;
      NodeId target =
          endpoint_pool[rng->NextBounded(endpoint_pool.size())];
      if (target == v || g.HasEdge(v, target)) continue;
      Status st = g.AddEdge(v, target);
      assert(st.ok());
      (void)st;
      endpoint_pool.push_back(v);
      endpoint_pool.push_back(target);
      ++attached;
    }
  }
  return g;
}

std::vector<NodeId> PlantMotif(Graph* g, const Graph& motif,
                               size_t bridge_edges, Rng* rng) {
  std::vector<NodeId> ids;
  ids.reserve(motif.num_nodes());
  for (NodeId v = 0; v < motif.num_nodes(); ++v) {
    ids.push_back(g->AddNode(motif.node_type(v)));
  }
  for (NodeId u = 0; u < motif.num_nodes(); ++u) {
    for (const auto& nb : motif.neighbors(u)) {
      if (!motif.directed() && nb.node < u) continue;
      Status st = g->AddEdge(ids[u], ids[nb.node], nb.edge_type);
      assert(st.ok());
      (void)st;
    }
  }
  size_t base_nodes = g->num_nodes() - motif.num_nodes();
  if (base_nodes > 0) {
    size_t added = 0;
    size_t guard = 0;
    while (added < std::max<size_t>(1, bridge_edges) && guard < 100) {
      ++guard;
      NodeId inside = ids[rng->NextBounded(ids.size())];
      NodeId outside = static_cast<NodeId>(rng->NextBounded(base_nodes));
      if (g->HasEdge(inside, outside)) continue;
      Status st = g->AddEdge(inside, outside);
      assert(st.ok());
      (void)st;
      ++added;
    }
  }
  return ids;
}

Graph HouseMotif(NodeType node_type) {
  // The PyG house: a 4-cycle "body" with a roof apex over one edge.
  Graph g;
  for (int i = 0; i < 5; ++i) g.AddNode(node_type);
  const std::pair<NodeId, NodeId> edges[] = {
      {0, 1}, {1, 2}, {2, 3}, {3, 0},  // body
      {0, 4}, {1, 4},                  // roof
  };
  for (auto [u, v] : edges) {
    Status st = g.AddEdge(u, v);
    assert(st.ok());
    (void)st;
  }
  return g;
}

Graph CycleMotif(size_t length, NodeType node_type) {
  return RingGraph(length, node_type);
}

Graph RingGraph(size_t n, NodeType node_type) {
  assert(n >= 3);
  Graph g;
  for (size_t i = 0; i < n; ++i) g.AddNode(node_type);
  for (size_t i = 0; i < n; ++i) {
    Status st = g.AddEdge(static_cast<NodeId>(i),
                          static_cast<NodeId>((i + 1) % n));
    assert(st.ok());
    (void)st;
  }
  return g;
}

Graph RandomConnectedGraph(size_t n, size_t extra_edges, NodeType node_type,
                           Rng* rng) {
  Graph g;
  for (size_t i = 0; i < n; ++i) g.AddNode(node_type);
  for (size_t i = 1; i < n; ++i) {
    Status st = g.AddEdge(static_cast<NodeId>(rng->NextBounded(i)),
                          static_cast<NodeId>(i));
    assert(st.ok());
    (void)st;
  }
  size_t added = 0;
  size_t guard = 0;
  while (added < extra_edges && guard < 20 * extra_edges + 100) {
    ++guard;
    NodeId u = static_cast<NodeId>(rng->NextBounded(n));
    NodeId v = static_cast<NodeId>(rng->NextBounded(n));
    if (u == v || g.HasEdge(u, v)) continue;
    Status st = g.AddEdge(u, v);
    assert(st.ok());
    (void)st;
    ++added;
  }
  return g;
}

}  // namespace gvex
