// Synthetic stand-ins for the seven evaluation datasets of Table 3.
//
// Each generator plants class-determining substructures so that (1) a GCN
// can learn the classification to high accuracy, and (2) the ground-truth
// discriminative motif is known, which is what the paper's case studies
// rely on (the NO2 toxicophore of Fig. 10, the star/biclique patterns of
// Fig. 11, the per-class ENZ structures of Fig. 13). Scales default to
// laptop-size while preserving each dataset's qualitative regime (small
// molecules vs large sparse graphs vs many instances). See DESIGN.md §1
// for the substitution rationale.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gvex/common/result.h"
#include "gvex/graph/graph_db.h"

namespace gvex {
namespace datasets {

// ---- MUTAGENICITY (MUT) -----------------------------------------------------

/// Atom vocabulary for the molecule generators.
enum AtomType : NodeType {
  kCarbon = 0,
  kNitrogen = 1,
  kOxygen = 2,
  kHydrogen = 3,
  kChlorine = 4,
  kSulfur = 5,
};
inline constexpr size_t kNumAtomTypes = 6;

/// Bond types (edge types).
enum BondType : EdgeType {
  kSingleBond = 0,
  kDoubleBond = 1,
  kTripleBond = 2,
};

struct MutagenicityOptions {
  size_t num_graphs = 200;
  uint64_t seed = 101;
  float feature_noise = 0.02f;
};

/// Molecules: carbon-ring scaffolds; mutagens (label 1) carry a planted
/// toxicophore (nitro group NO2 or aromatic amine), nonmutagens (label 0)
/// carry benign substituents (hydroxyl, methyl).
GraphDatabase MakeMutagenicity(const MutagenicityOptions& options = {});

/// The ground-truth NO2 toxicophore pattern (for case-study checks).
Graph NitroGroupPattern();

// ---- REDDIT-BINARY (RED) ----------------------------------------------------

struct RedditOptions {
  size_t num_graphs = 120;
  /// Wide size range: small threads keep explanation-sized subgraphs
  /// in-distribution for the classifier (consistency checks run M on
  /// 5-20 node subgraphs).
  size_t min_users = 12;
  size_t max_users = 90;
  uint64_t seed = 202;
  size_t feature_dim = 4;
};

/// Discussion threads: label 0 = online-discussion (star-burst hubs),
/// label 1 = question-answer (expert-asker bicliques). Featureless:
/// constant default features.
GraphDatabase MakeRedditBinary(const RedditOptions& options = {});

// ---- ENZYMES (ENZ) ----------------------------------------------------------

struct EnzymesOptions {
  size_t num_graphs = 180;  // 30 per class
  uint64_t seed = 303;
  float feature_noise = 0.02f;
};

/// Six enzyme classes distinguished by planted secondary-structure motif
/// mixes over 3 node types (helix / sheet / turn).
GraphDatabase MakeEnzymes(const EnzymesOptions& options = {});

// ---- MALNET-TINY (MAL) ------------------------------------------------------

struct MalnetOptions {
  size_t num_graphs = 150;
  /// Large graphs are the point of MAL (baseline-timeout regime), but a
  /// size spread down to small call graphs keeps subgraph inference
  /// in-distribution.
  size_t min_functions = 30;
  size_t max_functions = 240;
  uint64_t seed = 404;
};

/// Directed function-call graphs, 5 malware families distinguished by
/// calling-structure motifs (recursion cycles, fan-out hubs, deep chains,
/// diamonds, mutual-call pairs). Large individual graphs: the regime where
/// the paper's baselines time out (Fig. 9(c)).
GraphDatabase MakeMalnet(const MalnetOptions& options = {});

// ---- PCQM4Mv2 (PCQ) ---------------------------------------------------------

struct PcqmOptions {
  size_t num_graphs = 600;  // sweep this for Fig. 9(d)
  uint64_t seed = 505;
  float feature_noise = 0.02f;
};

/// Small molecules (~15 atoms), many instances, 3 classes keyed to planted
/// functional groups (carboxyl / nitrile / plain hydrocarbon). 9-dim
/// features: one-hot atom type + 3 auxiliary dims.
GraphDatabase MakePcqm(const PcqmOptions& options = {});

// ---- PRODUCTS (PRO) ---------------------------------------------------------

struct ProductsOptions {
  size_t base_nodes = 3000;
  size_t num_communities = 8;
  size_t num_subgraphs = 120;
  size_t ego_radius = 2;
  size_t max_subgraph_nodes = 120;
  uint64_t seed = 606;
  size_t feature_dim = 16;
};

/// One large power-law co-purchase graph with planted category
/// communities, transformed into graph classification by ego-subgraph
/// sampling (the paper's own §6.2 transformation: subgraph label = center
/// node's category).
GraphDatabase MakeProducts(const ProductsOptions& options = {});

// ---- SYNTHETIC (SYN) --------------------------------------------------------

struct BaMotifOptions {
  size_t num_graphs = 100;
  size_t base_nodes = 60;
  size_t ba_attachment = 2;
  size_t motifs_per_graph = 2;
  uint64_t seed = 707;
  size_t feature_dim = 4;
};

/// Planted-motif ground truth for generators that know exactly which nodes
/// carry the class signal: `nodes[i]` is the sorted, deduplicated set of
/// node ids occupied by planted motifs in graph `i`. Consumed by the
/// explainer-zoo evaluation gate (gvex::zoo) to score motif recovery.
struct MotifTruth {
  std::vector<std::vector<NodeId>> nodes;
};

/// Barabási–Albert base + HouseMotif (class 0) or CycleMotif (class 1),
/// the PyG construction the paper uses for SYN. When `truth` is non-null
/// the planted node ids are exported per graph; the generated database is
/// byte-identical either way (truth capture consumes no extra randomness).
GraphDatabase MakeBaMotif(const BaMotifOptions& options = {},
                          MotifTruth* truth = nullptr);

// ---- registry -----------------------------------------------------------------

/// Dataset short codes used throughout the paper: MUT, RED, ENZ, MAL, PCQ,
/// PRO, SYN. `scale` in (0, 1] shrinks instance counts proportionally.
Result<GraphDatabase> MakeByName(const std::string& code, double scale = 1.0,
                                 uint64_t seed_offset = 0);

/// Like MakeByName but also exports planted-motif ground truth. Only
/// datasets whose generators track planted node ids support this
/// (currently SYN); other codes answer kUnimplemented. The database is
/// byte-identical to the MakeByName output for the same arguments.
Result<GraphDatabase> MakeByNameWithTruth(const std::string& code,
                                          double scale, uint64_t seed_offset,
                                          MotifTruth* truth);

/// All dataset codes in Table 3 order.
std::vector<std::string> AllDatasetCodes();

}  // namespace datasets
}  // namespace gvex
