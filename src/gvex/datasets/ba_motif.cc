#include <algorithm>

#include "gvex/datasets/datasets.h"
#include "gvex/datasets/generator_util.h"

namespace gvex {
namespace datasets {

GraphDatabase MakeBaMotif(const BaMotifOptions& options, MotifTruth* truth) {
  GraphDatabase db;
  Rng rng(options.seed);
  constexpr NodeType kBaseType = 0;
  constexpr NodeType kMotifType = 1;
  if (truth != nullptr) truth->nodes.clear();
  for (size_t i = 0; i < options.num_graphs; ++i) {
    Rng graph_rng = rng.Fork();
    Graph g = BarabasiAlbert(options.base_nodes, options.ba_attachment,
                             kBaseType, &graph_rng);
    const bool cycle_class = (i % 2 == 1);
    std::vector<NodeId> planted;
    for (size_t m = 0; m < options.motifs_per_graph; ++m) {
      Graph motif = cycle_class ? CycleMotif(6, kMotifType)
                                : HouseMotif(kMotifType);
      std::vector<NodeId> ids = PlantMotif(&g, motif, 1, &graph_rng);
      planted.insert(planted.end(), ids.begin(), ids.end());
    }
    if (truth != nullptr) {
      std::sort(planted.begin(), planted.end());
      planted.erase(std::unique(planted.begin(), planted.end()),
                    planted.end());
      truth->nodes.push_back(std::move(planted));
    }
    AssignConstantFeatures(&g, options.feature_dim);
    db.Add(std::move(g), cycle_class ? 1 : 0,
           (cycle_class ? "cycle_" : "house_") + std::to_string(i));
  }
  return db;
}

}  // namespace datasets
}  // namespace gvex
