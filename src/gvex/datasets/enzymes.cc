#include "gvex/datasets/datasets.h"
#include "gvex/datasets/generator_util.h"

namespace gvex {
namespace datasets {
namespace {

// Secondary-structure element types.
constexpr NodeType kHelix = 0;
constexpr NodeType kSheet = 1;
constexpr NodeType kTurn = 2;
constexpr size_t kNumSseTypes = 3;

// Class-specific structural motifs over SSE interaction graphs.
Graph ClassMotif(int cls) {
  Graph m;
  switch (cls) {
    case 0: {  // helix chain
      for (int i = 0; i < 4; ++i) m.AddNode(kHelix);
      for (int i = 0; i < 3; ++i) {
        MustAddEdge(&m, static_cast<NodeId>(i), static_cast<NodeId>(i + 1));
      }
      break;
    }
    case 1: {  // sheet square (4-cycle)
      for (int i = 0; i < 4; ++i) m.AddNode(kSheet);
      for (int i = 0; i < 4; ++i) {
        MustAddEdge(&m, static_cast<NodeId>(i),
                    static_cast<NodeId>((i + 1) % 4));
      }
      break;
    }
    case 2: {  // turn triangle
      for (int i = 0; i < 3; ++i) m.AddNode(kTurn);
      MustAddEdge(&m, 0, 1);
      MustAddEdge(&m, 1, 2);
      MustAddEdge(&m, 0, 2);
      break;
    }
    case 3: {  // helix-sheet alternating ring
      m.AddNode(kHelix);
      m.AddNode(kSheet);
      m.AddNode(kHelix);
      m.AddNode(kSheet);
      for (int i = 0; i < 4; ++i) {
        MustAddEdge(&m, static_cast<NodeId>(i),
                    static_cast<NodeId>((i + 1) % 4));
      }
      break;
    }
    case 4: {  // sheet star
      m.AddNode(kSheet);
      for (int i = 0; i < 4; ++i) {
        m.AddNode(kTurn);
        MustAddEdge(&m, 0, static_cast<NodeId>(i + 1));
      }
      break;
    }
    default: {  // class 5: helix-turn-helix
      m.AddNode(kHelix);
      m.AddNode(kTurn);
      m.AddNode(kHelix);
      MustAddEdge(&m, 0, 1);
      MustAddEdge(&m, 1, 2);
      break;
    }
  }
  return m;
}

}  // namespace

GraphDatabase MakeEnzymes(const EnzymesOptions& options) {
  GraphDatabase db;
  Rng rng(options.seed);
  constexpr size_t kClasses = 6;
  for (size_t i = 0; i < options.num_graphs; ++i) {
    Rng graph_rng = rng.Fork();
    const int cls = static_cast<int>(i % kClasses);
    // Base protein interaction scaffold: random connected graph over
    // mixed SSE types.
    size_t base = 18 + graph_rng.NextBounded(12);
    Graph g = RandomConnectedGraph(base, base / 3, kHelix, &graph_rng);
    // Randomize base node types (keeping the class motif as the signal).
    // Direct type mutation is not exposed; rebuild with random types.
    Graph typed;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      typed.AddNode(static_cast<NodeType>(graph_rng.NextBounded(kNumSseTypes)));
    }
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      for (const auto& nb : g.neighbors(u)) {
        if (nb.node < u) continue;
        MustAddEdge(&typed, u, nb.node);
      }
    }
    // Plant the class motif twice for a robust signal.
    PlantMotif(&typed, ClassMotif(cls), 1, &graph_rng);
    PlantMotif(&typed, ClassMotif(cls), 1, &graph_rng);
    AssignOneHotFeatures(&typed, kNumSseTypes, options.feature_noise,
                         &graph_rng);
    db.Add(std::move(typed), cls, "enzyme_" + std::to_string(i));
  }
  return db;
}

}  // namespace datasets
}  // namespace gvex
