#include "gvex/datasets/datasets.h"
#include "gvex/datasets/generator_util.h"

namespace gvex {
namespace datasets {
namespace {

constexpr NodeType kUser = 0;

// A star: one hub poster drawing `leaves` one-off repliers (the P61
// pattern of Fig. 11). Returns the hub id.
NodeId AddStar(Graph* g, size_t leaves) {
  NodeId hub = g->AddNode(kUser);
  for (size_t i = 0; i < leaves; ++i) {
    NodeId leaf = g->AddNode(kUser);
    MustAddEdge(g, hub, leaf);
  }
  return hub;
}

// A biclique: `experts` users each answering most of `askers` distinct
// question posters (the P81 pattern of Fig. 11). Returns one expert id.
NodeId AddBiclique(Graph* g, size_t experts, size_t askers, Rng* rng) {
  std::vector<NodeId> expert_ids;
  for (size_t e = 0; e < experts; ++e) expert_ids.push_back(g->AddNode(kUser));
  (void)rng;
  for (size_t a = 0; a < askers; ++a) {
    // Proper biclique: every asker is answered by every expert, the
    // defining K_{e,m} structure of Q&A threads (Fig. 11's P81).
    NodeId asker = g->AddNode(kUser);
    for (NodeId expert : expert_ids) MustAddEdge(g, expert, asker);
  }
  return expert_ids[0];
}

// Bridge two components with one edge so threads stay connected.
void Bridge(Graph* g, NodeId a, NodeId b) {
  if (!g->HasEdge(a, b)) MustAddEdge(g, a, b);
}

// Each thread carries a *strong* instance of its class motif and a *weak*
// instance of the other (real threads mix interaction styles; the class is
// the dominant one). This keeps node-removal counterfactuals meaningful
// for BOTH classes: strip the dominant structure and the weak opposite
// structure is what remains for the classifier to see.
Graph MakeThread(size_t users, bool qa, Rng* rng) {
  Graph g;
  NodeId strong_anchor;
  NodeId weak_anchor;
  if (qa) {
    size_t experts = 2 + rng->NextBounded(2);
    size_t askers = users * 2 / 3;
    strong_anchor = AddBiclique(&g, experts, askers, rng);
    weak_anchor = AddStar(&g, 3 + rng->NextBounded(3));
  } else {
    size_t star_leaves = users * 2 / 3;
    strong_anchor = AddStar(&g, star_leaves);
    // Weak Q&A flavor: a *near*-biclique (K_{2,2} minus one reply). It
    // gives the counterfactual remainder a Q&A-leaning signal without
    // planting the true K_{2,2} core — which must stay unique to Q&A
    // threads (it is the discriminative pattern of Fig. 11).
    NodeId e1 = g.AddNode(kUser);
    NodeId e2 = g.AddNode(kUser);
    NodeId a1 = g.AddNode(kUser);
    NodeId a2 = g.AddNode(kUser);
    MustAddEdge(&g, e1, a1);
    MustAddEdge(&g, e1, a2);
    MustAddEdge(&g, e2, a1);  // e2-a2 missing: no 4-cycle
    weak_anchor = e1;
  }
  Bridge(&g, strong_anchor, weak_anchor);
  // Background chatter: a few extra repliers attached anywhere.
  while (g.num_nodes() < users) {
    NodeId u = g.AddNode(kUser);
    NodeId other = static_cast<NodeId>(rng->NextBounded(u));
    MustAddEdge(&g, other, u);
  }
  return g;
}

}  // namespace

GraphDatabase MakeRedditBinary(const RedditOptions& options) {
  GraphDatabase db;
  Rng rng(options.seed);
  for (size_t i = 0; i < options.num_graphs; ++i) {
    Rng graph_rng = rng.Fork();
    size_t users = options.min_users +
                   graph_rng.NextBounded(options.max_users -
                                         options.min_users + 1);
    const bool qa = (i % 2 == 1);
    Graph g = MakeThread(users, qa, &graph_rng);
    AssignConstantFeatures(&g, options.feature_dim);
    db.Add(std::move(g), qa ? 1 : 0,
           (qa ? "qa_" : "discussion_") + std::to_string(i));
  }
  return db;
}

}  // namespace datasets
}  // namespace gvex
