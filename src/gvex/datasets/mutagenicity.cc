#include <cassert>

#include "gvex/datasets/datasets.h"
#include "gvex/datasets/generator_util.h"

namespace gvex {
namespace datasets {
namespace {

// Attach a nitro group (N with two double-bonded O) to `anchor`.
void AttachNitro(Graph* g, NodeId anchor, Rng* rng) {
  (void)rng;
  NodeId n = g->AddNode(kNitrogen);
  NodeId o1 = g->AddNode(kOxygen);
  NodeId o2 = g->AddNode(kOxygen);
  MustAddEdge(g, anchor, n, kSingleBond);
  MustAddEdge(g, n, o1, kDoubleBond);
  MustAddEdge(g, n, o2, kDoubleBond);
}

// Aromatic amine: N with two H, bonded to the ring.
void AttachAmine(Graph* g, NodeId anchor, Rng* rng) {
  (void)rng;
  NodeId n = g->AddNode(kNitrogen);
  NodeId h1 = g->AddNode(kHydrogen);
  NodeId h2 = g->AddNode(kHydrogen);
  MustAddEdge(g, anchor, n, kSingleBond);
  MustAddEdge(g, n, h1, kSingleBond);
  MustAddEdge(g, n, h2, kSingleBond);
}

// Benign substituents for nonmutagens.
void AttachHydroxyl(Graph* g, NodeId anchor, Rng* rng) {
  (void)rng;
  NodeId o = g->AddNode(kOxygen);
  NodeId h = g->AddNode(kHydrogen);
  MustAddEdge(g, anchor, o, kSingleBond);
  MustAddEdge(g, o, h, kSingleBond);
}

void AttachMethyl(Graph* g, NodeId anchor, Rng* rng) {
  (void)rng;
  NodeId c = g->AddNode(kCarbon);
  MustAddEdge(g, anchor, c, kSingleBond);
  for (int i = 0; i < 3; ++i) {
    NodeId h = g->AddNode(kHydrogen);
    MustAddEdge(g, c, h, kSingleBond);
  }
}

// Scaffold: 1-2 fused/bridged benzene-like rings with a few hydrogens.
// Returns candidate anchor carbons for substituents.
std::vector<NodeId> BuildScaffold(Graph* g, Rng* rng) {
  const size_t rings = 1 + rng->NextBounded(2);
  std::vector<NodeId> anchors;
  NodeId prev_ring_start = kInvalidNode;
  for (size_t r = 0; r < rings; ++r) {
    NodeId start = static_cast<NodeId>(g->num_nodes());
    for (int i = 0; i < 6; ++i) g->AddNode(kCarbon);
    for (int i = 0; i < 6; ++i) {
      MustAddEdge(g, start + i, start + (i + 1) % 6,
                  (i % 2 == 0) ? kDoubleBond : kSingleBond);
    }
    if (prev_ring_start != kInvalidNode) {
      // Bridge the rings with a single bond.
      MustAddEdge(g, prev_ring_start + 3, start, kSingleBond);
    }
    prev_ring_start = start;
    anchors.push_back(start + 1);
    anchors.push_back(start + 4);
  }
  // Sprinkle hydrogens on non-anchor carbons.
  for (NodeId v = 0; v < g->num_nodes(); ++v) {
    if (g->node_type(v) == kCarbon && g->degree(v) == 2 && rng->NextBool(0.5)) {
      NodeId h = g->AddNode(kHydrogen);
      MustAddEdge(g, v, h, kSingleBond);
    }
  }
  return anchors;
}

}  // namespace

GraphDatabase MakeMutagenicity(const MutagenicityOptions& options) {
  GraphDatabase db;
  Rng rng(options.seed);
  for (size_t i = 0; i < options.num_graphs; ++i) {
    Rng graph_rng = rng.Fork();
    Graph g;
    std::vector<NodeId> anchors = BuildScaffold(&g, &graph_rng);
    const bool mutagen = (i % 2 == 0);
    if (mutagen) {
      // Primary toxicophore: NO2; occasionally an amine as well.
      AttachNitro(&g, anchors[graph_rng.NextBounded(anchors.size())],
                  &graph_rng);
      if (graph_rng.NextBool(0.3) && anchors.size() > 1) {
        AttachAmine(&g, anchors[1], &graph_rng);
      }
    } else {
      AttachHydroxyl(&g, anchors[graph_rng.NextBounded(anchors.size())],
                     &graph_rng);
      if (graph_rng.NextBool(0.5) && anchors.size() > 1) {
        AttachMethyl(&g, anchors[1], &graph_rng);
      }
    }
    AssignOneHotFeatures(&g, kNumAtomTypes, options.feature_noise, &graph_rng);
    db.Add(std::move(g), mutagen ? 1 : 0,
           (mutagen ? "mutagen_" : "nonmutagen_") + std::to_string(i));
  }
  return db;
}

Graph NitroGroupPattern() {
  Graph p;
  NodeId c = p.AddNode(kCarbon);
  NodeId n = p.AddNode(kNitrogen);
  NodeId o1 = p.AddNode(kOxygen);
  NodeId o2 = p.AddNode(kOxygen);
  MustAddEdge(&p, c, n, kSingleBond);
  MustAddEdge(&p, n, o1, kDoubleBond);
  MustAddEdge(&p, n, o2, kDoubleBond);
  return p;
}

}  // namespace datasets
}  // namespace gvex
