#include "gvex/gnn/optimizer.h"

#include <cassert>
#include <cmath>

namespace gvex {

void AdamOptimizer::Step(const std::vector<Matrix*>& params,
                         const std::vector<Matrix*>& grads) {
  assert(params.size() == grads.size());
  if (m_.empty()) {
    m_.resize(params.size());
    v_.resize(params.size());
    for (size_t i = 0; i < params.size(); ++i) {
      m_[i].assign(params[i]->size(), 0.0f);
      v_[i].assign(params[i]->size(), 0.0f);
    }
  }
  assert(m_.size() == params.size());
  ++t_;
  const float b1 = config_.beta1;
  const float b2 = config_.beta2;
  const float bias1 = 1.0f - std::pow(b1, static_cast<float>(t_));
  const float bias2 = 1.0f - std::pow(b2, static_cast<float>(t_));
  const float lr = config_.learning_rate;

  for (size_t i = 0; i < params.size(); ++i) {
    float* p = params[i]->data();
    const float* g = grads[i]->data();
    assert(params[i]->size() == grads[i]->size());
    auto& m = m_[i];
    auto& v = v_[i];
    for (size_t j = 0; j < params[i]->size(); ++j) {
      float grad = g[j] + config_.weight_decay * p[j];
      m[j] = b1 * m[j] + (1.0f - b1) * grad;
      v[j] = b2 * v[j] + (1.0f - b2) * grad * grad;
      float m_hat = m[j] / bias1;
      float v_hat = v[j] / bias2;
      p[j] -= lr * m_hat / (std::sqrt(v_hat) + config_.epsilon);
    }
  }
}

void AdamOptimizer::Reset() {
  t_ = 0;
  m_.clear();
  v_.clear();
}

}  // namespace gvex
