// Inference-only weight quantization for shipped model payloads
// (cluster/bundle.h "v2" model sections).
//
// Two reduced precisions, both dequantized back to fp32 on load (the
// served forward pass itself always runs fp32 — what quantization
// changes is the weights it runs over, never the kernels):
//
//  * fp16 — IEEE 754 binary16, software round-to-nearest-even. Halves
//    the payload. Values already representable in fp16 (all half-integer
//    multiples within range, anything with <= 11 significand bits)
//    round-trip exactly.
//  * int8 — per-row symmetric: for each weight row r, scale_r =
//    max|row_r| / 127 and q = round(w / scale_r) in [-127, 127].
//    Quarter-size payload. Documented error bound:
//        |w - dequant(quant(w))| <= scale_r / 2  (per row)
//    i.e. half a quantization step; rows of all zeros are exact.
//
// Fingerprint stability: once a model is quantized, bundles carry the
// QuantizedModel verbatim — fetch, install, and re-publish all re-encode
// the stored quantized tensors rather than re-quantizing the dequantized
// fp32 twin. Content fingerprints therefore survive fetch/re-publish
// cycles by construction (and fp16 happens to be exactly idempotent
// anyway, since every dequantized value is fp16-representable).
//
// The serve-side exactness guarantee is the per-route exact-fp32 policy
// (view_registry.h): a route marked exact-fp32 refuses quantized
// installs, so its answers stay byte-identical to the fp32 reference —
// the fidelity-grading posture of Agarwal et al.'s evaluation framework,
// applied to weights instead of explainers.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "gvex/common/result.h"
#include "gvex/gnn/model.h"

namespace gvex {

enum class WeightPrecision : int {
  kFp32 = 0,
  kFp16 = 1,
  kInt8 = 2,
};

/// "fp32" / "fp16" / "int8".
const char* WeightPrecisionName(WeightPrecision p);
Result<WeightPrecision> ParseWeightPrecision(const std::string& name);

/// Software fp32 <-> IEEE binary16 conversion (round-to-nearest-even;
/// overflow saturates to ±inf, NaN stays NaN).
uint16_t Fp32ToFp16(float value);
float Fp16ToFp32(uint16_t half);

/// One quantized tensor. Exactly one of fp16/int8 is populated,
/// matching `precision`; `scales` carries one per-row scale for int8.
struct QuantizedTensor {
  WeightPrecision precision = WeightPrecision::kFp16;
  size_t rows = 0;
  size_t cols = 0;
  std::vector<uint16_t> fp16;
  std::vector<int8_t> int8;
  std::vector<float> scales;
};

QuantizedTensor QuantizeTensor(const Matrix& m, WeightPrecision precision);
Matrix DequantizeTensor(const QuantizedTensor& t);

/// A whole classifier in reduced precision: config + every parameter
/// tensor, in GcnClassifier::Parameters() order.
struct QuantizedModel {
  GcnConfig config;
  WeightPrecision precision = WeightPrecision::kFp16;
  std::vector<QuantizedTensor> tensors;
};

/// `precision` must be kFp16 or kInt8 (kFp32 is "don't quantize" — a
/// bundle with an fp32 model carries the model verbatim instead).
Result<QuantizedModel> QuantizeModel(const GcnClassifier& model,
                                     WeightPrecision precision);
Result<GcnClassifier> DequantizeModel(const QuantizedModel& qm);

/// The worst-case |w - dequant(quant(w))| the scheme guarantees for this
/// tensor: 0 for fp16 inputs that are fp16-representable, and
/// max_r(scale_r) / 2 for int8. Tests pin the actual error under this.
float QuantizationErrorBound(const QuantizedTensor& t);

// Sectioned serialization (gvexgcnq-v1): magic, section count, config
// section, one CRC section per tensor, end marker — the gvexgcn-v2
// framing with quantized payloads.
Status WriteQuantizedModel(const QuantizedModel& qm, std::ostream* out);
Result<QuantizedModel> ReadQuantizedModel(std::istream* in);

}  // namespace gvex
