// Adam optimizer (Kingma & Ba 2015), the paper's training optimizer
// (§6.1: Adam, lr 0.001).
#pragma once

#include <cstddef>
#include <vector>

#include "gvex/tensor/matrix.h"

namespace gvex {

struct AdamConfig {
  float learning_rate = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float epsilon = 1e-8f;
  float weight_decay = 0.0f;
};

/// \brief Adam over an arbitrary list of parameter tensors. State slots are
/// allocated lazily on the first Step and keyed by position, so the caller
/// must pass parameters in a stable order.
class AdamOptimizer {
 public:
  explicit AdamOptimizer(AdamConfig config = {}) : config_(config) {}

  /// Apply one update: params[i] -= lr * m_hat / (sqrt(v_hat) + eps).
  void Step(const std::vector<Matrix*>& params,
            const std::vector<Matrix*>& grads);

  void Reset();

  int64_t step_count() const { return t_; }
  const AdamConfig& config() const { return config_; }

 private:
  AdamConfig config_;
  int64_t t_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

}  // namespace gvex
