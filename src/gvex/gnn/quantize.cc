#include "gvex/gnn/quantize.h"

#include <cmath>
#include <cstring>
#include <sstream>

#include "gvex/common/io_util.h"

namespace gvex {

namespace {

constexpr const char* kMagic = "gvexgcnq-v1";
constexpr const char* kEndTag = "gvexgcnq-end";

// Mirrors the gvexgcn-v2 config line (serialize.cc); kept in sync by the
// quantize round-trip tests, which push a config through both paths.
void WriteConfigLine(const GcnConfig& c, std::ostream* out) {
  (*out) << c.input_dim << " " << c.hidden_dim << " " << c.num_layers << " "
         << c.num_classes << " " << c.seed << " " << c.edge_type_weights.size();
  for (float w : c.edge_type_weights) (*out) << " " << w;
  (*out) << " " << static_cast<int>(c.propagation) << "\n";
}

Status ReadConfigLine(std::istream* in, GcnConfig* config) {
  size_t num_edge_weights = 0;
  if (!((*in) >> config->input_dim >> config->hidden_dim >>
        config->num_layers >> config->num_classes >> config->seed >>
        num_edge_weights)) {
    return Status::IoError("bad quantized model config");
  }
  config->edge_type_weights.resize(num_edge_weights);
  for (float& w : config->edge_type_weights) {
    if (!((*in) >> w)) return Status::IoError("bad edge weight");
  }
  int propagation = 0;
  if (!((*in) >> propagation) || propagation < 0 || propagation > 2) {
    return Status::IoError("bad propagation kind");
  }
  config->propagation = static_cast<Graph::PropagationKind>(propagation);
  return Status::OK();
}

}  // namespace

const char* WeightPrecisionName(WeightPrecision p) {
  switch (p) {
    case WeightPrecision::kFp32:
      return "fp32";
    case WeightPrecision::kFp16:
      return "fp16";
    case WeightPrecision::kInt8:
      return "int8";
  }
  return "fp32";
}

Result<WeightPrecision> ParseWeightPrecision(const std::string& name) {
  if (name == "fp32") return WeightPrecision::kFp32;
  if (name == "fp16") return WeightPrecision::kFp16;
  if (name == "int8") return WeightPrecision::kInt8;
  return Status::InvalidArgument("unknown weight precision '" + name +
                                 "' (want fp32|fp16|int8)");
}

uint16_t Fp32ToFp16(float value) {
  uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  const uint32_t sign = (bits >> 16) & 0x8000u;
  const uint32_t exp = (bits >> 23) & 0xFFu;
  uint32_t mant = bits & 0x7FFFFFu;
  if (exp == 0xFFu) {  // inf / NaN (keep NaN signaled via a mantissa bit)
    return static_cast<uint16_t>(
        sign | 0x7C00u | (mant != 0 ? 0x200u | (mant >> 13) : 0u));
  }
  const int half_exp = static_cast<int>(exp) - 127 + 15;
  if (half_exp >= 0x1F) return static_cast<uint16_t>(sign | 0x7C00u);  // ±inf
  if (half_exp <= 0) {
    // Subnormal half (or underflow to zero), round-to-nearest-even.
    if (half_exp < -10) return static_cast<uint16_t>(sign);
    mant |= 0x800000u;  // make the implicit bit explicit
    const uint32_t shift = static_cast<uint32_t>(14 - half_exp);  // 14..24
    uint32_t half_mant = mant >> shift;
    const uint32_t rem = mant & ((1u << shift) - 1);
    const uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (half_mant & 1u))) ++half_mant;
    // A mantissa carry rolls into exponent 1 — exactly right.
    return static_cast<uint16_t>(sign | half_mant);
  }
  uint32_t half = sign | (static_cast<uint32_t>(half_exp) << 10) | (mant >> 13);
  const uint32_t rem = mant & 0x1FFFu;
  if (rem > 0x1000u || (rem == 0x1000u && (half & 1u))) ++half;  // RNE
  return static_cast<uint16_t>(half);  // carry into exp (or inf) is correct
}

float Fp16ToFp32(uint16_t half) {
  const uint32_t sign = static_cast<uint32_t>(half & 0x8000u) << 16;
  const uint32_t exp = (half >> 10) & 0x1Fu;
  const uint32_t mant = half & 0x3FFu;
  uint32_t bits;
  if (exp == 0) {
    if (mant == 0) {
      bits = sign;  // ±0
    } else {
      // Subnormal: value = mant * 2^-24; normalize into fp32.
      int p = 31 - __builtin_clz(mant);  // highest set bit, 0..9
      bits = sign | (static_cast<uint32_t>(p + 103) << 23) |
             ((mant << (23 - p)) & 0x7FFFFFu);
    }
  } else if (exp == 0x1Fu) {
    bits = sign | 0x7F800000u | (mant << 13);
  } else {
    bits = sign | ((exp - 15 + 127) << 23) | (mant << 13);
  }
  float out;
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}

QuantizedTensor QuantizeTensor(const Matrix& m, WeightPrecision precision) {
  QuantizedTensor t;
  t.precision = precision;
  t.rows = m.rows();
  t.cols = m.cols();
  if (precision == WeightPrecision::kFp16) {
    t.fp16.reserve(m.size());
    for (size_t i = 0; i < m.size(); ++i) t.fp16.push_back(Fp32ToFp16(m.data()[i]));
    return t;
  }
  t.int8.resize(m.size());
  t.scales.resize(m.rows());
  for (size_t r = 0; r < m.rows(); ++r) {
    float max_abs = 0.0f;
    const float* row = m.RowPtr(r);
    for (size_t c = 0; c < m.cols(); ++c) {
      max_abs = std::max(max_abs, std::fabs(row[c]));
    }
    const float scale = max_abs / 127.0f;
    t.scales[r] = scale;
    for (size_t c = 0; c < m.cols(); ++c) {
      t.int8[r * m.cols() + c] =
          scale == 0.0f
              ? static_cast<int8_t>(0)
              : static_cast<int8_t>(std::lrintf(row[c] / scale));
    }
  }
  return t;
}

Matrix DequantizeTensor(const QuantizedTensor& t) {
  Matrix m(t.rows, t.cols);
  if (t.precision == WeightPrecision::kFp16) {
    for (size_t i = 0; i < m.size(); ++i) m.data()[i] = Fp16ToFp32(t.fp16[i]);
    return m;
  }
  for (size_t r = 0; r < t.rows; ++r) {
    const float scale = t.scales[r];
    for (size_t c = 0; c < t.cols; ++c) {
      m.At(r, c) = static_cast<float>(t.int8[r * t.cols + c]) * scale;
    }
  }
  return m;
}

float QuantizationErrorBound(const QuantizedTensor& t) {
  if (t.precision != WeightPrecision::kInt8) return 0.0f;
  float bound = 0.0f;
  for (float s : t.scales) bound = std::max(bound, s * 0.5f);
  return bound;
}

Result<QuantizedModel> QuantizeModel(const GcnClassifier& model,
                                     WeightPrecision precision) {
  if (precision == WeightPrecision::kFp32) {
    return Status::InvalidArgument(
        "kFp32 is not a quantization target; ship the model verbatim");
  }
  QuantizedModel qm;
  qm.config = model.config();
  qm.precision = precision;
  for (const Matrix* p : model.Parameters()) {
    qm.tensors.push_back(QuantizeTensor(*p, precision));
  }
  return qm;
}

Result<GcnClassifier> DequantizeModel(const QuantizedModel& qm) {
  GVEX_ASSIGN_OR_RETURN(GcnClassifier model, GcnClassifier::Create(qm.config));
  std::vector<Matrix*> params = model.MutableParameters();
  if (params.size() != qm.tensors.size()) {
    return Status::IoError("quantized tensor count mismatch");
  }
  for (size_t i = 0; i < params.size(); ++i) {
    Matrix loaded = DequantizeTensor(qm.tensors[i]);
    if (loaded.rows() != params[i]->rows() ||
        loaded.cols() != params[i]->cols()) {
      return Status::IoError("quantized tensor shape mismatch");
    }
    *params[i] = std::move(loaded);
  }
  return model;
}

Status WriteQuantizedModel(const QuantizedModel& qm, std::ostream* out) {
  if (qm.precision == WeightPrecision::kFp32) {
    return Status::InvalidArgument("quantized payload cannot be fp32");
  }
  SetMaxPrecision(out);
  (*out) << kMagic << "\n" << (1 + qm.tensors.size()) << "\n";
  {
    std::ostringstream rec;
    SetMaxPrecision(&rec);
    rec << WeightPrecisionName(qm.precision) << "\n";
    WriteConfigLine(qm.config, &rec);
    GVEX_RETURN_NOT_OK(WriteSection(out, rec.str()));
  }
  for (const QuantizedTensor& t : qm.tensors) {
    std::ostringstream rec;
    SetMaxPrecision(&rec);
    rec << t.rows << " " << t.cols;
    if (t.precision == WeightPrecision::kFp16) {
      for (uint16_t h : t.fp16) rec << " " << h;
    } else {
      for (float s : t.scales) rec << " " << s;
      for (int8_t q : t.int8) rec << " " << static_cast<int>(q);
    }
    rec << "\n";
    GVEX_RETURN_NOT_OK(WriteSection(out, rec.str()));
  }
  (*out) << kEndTag << " " << (1 + qm.tensors.size()) << "\n";
  if (!out->good()) return Status::IoError("quantized model write failed");
  return Status::OK();
}

Result<QuantizedModel> ReadQuantizedModel(std::istream* in) {
  std::string magic;
  if (!((*in) >> magic) || magic != kMagic) {
    return Status::IoError("bad quantized model magic");
  }
  size_t num_sections = 0;
  if (!((*in) >> num_sections) || num_sections == 0) {
    return Status::IoError("bad quantized model section count");
  }
  QuantizedModel qm;
  {
    GVEX_ASSIGN_OR_RETURN(std::string payload, ReadSection(in));
    std::istringstream rec(payload);
    std::string precision_name;
    if (!(rec >> precision_name)) {
      return Status::IoError("bad quantized model precision");
    }
    GVEX_ASSIGN_OR_RETURN(qm.precision, ParseWeightPrecision(precision_name));
    if (qm.precision == WeightPrecision::kFp32) {
      return Status::IoError("quantized payload declares fp32");
    }
    GVEX_RETURN_NOT_OK(ReadConfigLine(&rec, &qm.config));
  }
  for (size_t i = 0; i + 1 < num_sections; ++i) {
    GVEX_ASSIGN_OR_RETURN(std::string payload, ReadSection(in));
    std::istringstream rec(payload);
    QuantizedTensor t;
    t.precision = qm.precision;
    if (!(rec >> t.rows >> t.cols)) {
      return Status::IoError("bad quantized tensor shape");
    }
    const size_t count = t.rows * t.cols;
    if (t.precision == WeightPrecision::kFp16) {
      t.fp16.resize(count);
      for (uint16_t& h : t.fp16) {
        uint32_t v = 0;
        if (!(rec >> v) || v > 0xFFFFu) {
          return Status::IoError("bad fp16 tensor value");
        }
        h = static_cast<uint16_t>(v);
      }
    } else {
      t.scales.resize(t.rows);
      for (float& s : t.scales) {
        if (!(rec >> s)) return Status::IoError("bad int8 tensor scale");
      }
      t.int8.resize(count);
      for (int8_t& q : t.int8) {
        int v = 0;
        if (!(rec >> v) || v < -128 || v > 127) {
          return Status::IoError("bad int8 tensor value");
        }
        q = static_cast<int8_t>(v);
      }
    }
    qm.tensors.push_back(std::move(t));
  }
  std::string tag;
  size_t n_end = 0;
  if (!((*in) >> tag >> n_end) || tag != kEndTag || n_end != num_sections) {
    return Status::IoError("quantized model end marker missing");
  }
  return qm;
}

}  // namespace gvex
