#include "gvex/gnn/serialize.h"

#include <fstream>

namespace gvex {

namespace {
constexpr const char* kMagic = "gvexgcn-v1";

void WriteMatrix(const Matrix& m, std::ostream* out) {
  (*out) << m.rows() << " " << m.cols();
  for (size_t i = 0; i < m.size(); ++i) (*out) << " " << m.data()[i];
  (*out) << "\n";
}

bool ReadMatrix(std::istream* in, Matrix* m) {
  size_t rows = 0, cols = 0;
  if (!((*in) >> rows >> cols)) return false;
  *m = Matrix(rows, cols);
  for (size_t i = 0; i < m->size(); ++i) {
    if (!((*in) >> m->data()[i])) return false;
  }
  return true;
}
}  // namespace

Status GcnSerializer::Write(const GcnClassifier& model, std::ostream* out) {
  const GcnConfig& c = model.config();
  (*out) << kMagic << "\n"
         << c.input_dim << " " << c.hidden_dim << " " << c.num_layers << " "
         << c.num_classes << " " << c.seed << " "
         << c.edge_type_weights.size();
  for (float w : c.edge_type_weights) (*out) << " " << w;
  (*out) << " " << static_cast<int>(c.propagation) << "\n";
  for (const Matrix* p : model.Parameters()) WriteMatrix(*p, out);
  if (!out->good()) return Status::IoError("model write failed");
  return Status::OK();
}

Result<GcnClassifier> GcnSerializer::Read(std::istream* in) {
  std::string magic;
  if (!((*in) >> magic) || magic != kMagic) {
    return Status::IoError("bad model magic");
  }
  GcnConfig config;
  size_t num_edge_weights = 0;
  if (!((*in) >> config.input_dim >> config.hidden_dim >> config.num_layers >>
        config.num_classes >> config.seed >> num_edge_weights)) {
    return Status::IoError("bad model config");
  }
  config.edge_type_weights.resize(num_edge_weights);
  for (float& w : config.edge_type_weights) {
    if (!((*in) >> w)) return Status::IoError("bad edge weight");
  }
  int propagation = 0;
  if (!((*in) >> propagation) || propagation < 0 || propagation > 2) {
    return Status::IoError("bad propagation kind");
  }
  config.propagation = static_cast<Graph::PropagationKind>(propagation);
  GVEX_ASSIGN_OR_RETURN(GcnClassifier model, GcnClassifier::Create(config));
  for (Matrix* p : model.MutableParameters()) {
    Matrix loaded;
    if (!ReadMatrix(in, &loaded)) return Status::IoError("bad model tensor");
    if (loaded.rows() != p->rows() || loaded.cols() != p->cols()) {
      return Status::IoError("model tensor shape mismatch");
    }
    *p = std::move(loaded);
  }
  return model;
}

Status GcnSerializer::Save(const GcnClassifier& model,
                           const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) return Status::IoError("cannot open " + path);
  return Write(model, &out);
}

Result<GcnClassifier> GcnSerializer::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IoError("cannot open " + path);
  return Read(&in);
}

}  // namespace gvex
