#include "gvex/gnn/serialize.h"

#include <fstream>
#include <sstream>

#include "gvex/common/failpoint.h"
#include "gvex/common/io_util.h"

namespace gvex {

namespace {
constexpr const char* kMagicV1 = "gvexgcn-v1";
constexpr const char* kMagicV2 = "gvexgcn-v2";
constexpr const char* kEndTag = "gvexgcn-end";

void WriteMatrix(const Matrix& m, std::ostream* out) {
  (*out) << m.rows() << " " << m.cols();
  for (size_t i = 0; i < m.size(); ++i) (*out) << " " << m.data()[i];
  (*out) << "\n";
}

bool ReadMatrix(std::istream* in, Matrix* m) {
  size_t rows = 0, cols = 0;
  if (!((*in) >> rows >> cols)) return false;
  *m = Matrix(rows, cols);
  for (size_t i = 0; i < m->size(); ++i) {
    if (!((*in) >> m->data()[i])) return false;
  }
  return true;
}

void WriteConfigLine(const GcnConfig& c, std::ostream* out) {
  (*out) << c.input_dim << " " << c.hidden_dim << " " << c.num_layers << " "
         << c.num_classes << " " << c.seed << " " << c.edge_type_weights.size();
  for (float w : c.edge_type_weights) (*out) << " " << w;
  (*out) << " " << static_cast<int>(c.propagation) << "\n";
}

Status ReadConfigLine(std::istream* in, GcnConfig* config) {
  size_t num_edge_weights = 0;
  if (!((*in) >> config->input_dim >> config->hidden_dim >>
        config->num_layers >> config->num_classes >> config->seed >>
        num_edge_weights)) {
    return Status::IoError("bad model config");
  }
  config->edge_type_weights.resize(num_edge_weights);
  for (float& w : config->edge_type_weights) {
    if (!((*in) >> w)) return Status::IoError("bad edge weight");
  }
  int propagation = 0;
  if (!((*in) >> propagation) || propagation < 0 || propagation > 2) {
    return Status::IoError("bad propagation kind");
  }
  config->propagation = static_cast<Graph::PropagationKind>(propagation);
  return Status::OK();
}

Result<GcnClassifier> ReadV2Body(std::istream* in) {
  size_t num_sections = 0;
  if (!((*in) >> num_sections) || num_sections == 0) {
    return Status::IoError("bad model section count");
  }
  GVEX_ASSIGN_OR_RETURN(std::string config_payload, ReadSection(in));
  std::istringstream config_in(config_payload);
  GcnConfig config;
  GVEX_RETURN_NOT_OK(ReadConfigLine(&config_in, &config));
  GVEX_ASSIGN_OR_RETURN(GcnClassifier model, GcnClassifier::Create(config));
  std::vector<Matrix*> params = model.MutableParameters();
  if (params.size() != num_sections - 1) {
    return Status::IoError("model tensor count mismatch");
  }
  for (Matrix* p : params) {
    GVEX_ASSIGN_OR_RETURN(std::string payload, ReadSection(in));
    std::istringstream tensor_in(payload);
    Matrix loaded;
    if (!ReadMatrix(&tensor_in, &loaded)) {
      return Status::IoError("bad model tensor");
    }
    if (loaded.rows() != p->rows() || loaded.cols() != p->cols()) {
      return Status::IoError("model tensor shape mismatch");
    }
    *p = std::move(loaded);
  }
  std::string tag;
  size_t n_end = 0;
  if (!((*in) >> tag >> n_end) || tag != kEndTag || n_end != num_sections) {
    return Status::IoError("model end marker missing (truncated file?)");
  }
  return model;
}

Result<GcnClassifier> ReadV1Body(std::istream* in) {
  GcnConfig config;
  GVEX_RETURN_NOT_OK(ReadConfigLine(in, &config));
  GVEX_ASSIGN_OR_RETURN(GcnClassifier model, GcnClassifier::Create(config));
  for (Matrix* p : model.MutableParameters()) {
    Matrix loaded;
    if (!ReadMatrix(in, &loaded)) return Status::IoError("bad model tensor");
    if (loaded.rows() != p->rows() || loaded.cols() != p->cols()) {
      return Status::IoError("model tensor shape mismatch");
    }
    *p = std::move(loaded);
  }
  return model;
}

}  // namespace

Status GcnSerializer::Write(const GcnClassifier& model, std::ostream* out) {
  GVEX_FAILPOINT_RETURN("gnn.serialize.write");
  SetMaxPrecision(out);
  std::vector<const Matrix*> params = model.Parameters();
  (*out) << kMagicV2 << "\n" << (1 + params.size()) << "\n";
  {
    std::ostringstream rec;
    SetMaxPrecision(&rec);
    WriteConfigLine(model.config(), &rec);
    GVEX_RETURN_NOT_OK(WriteSection(out, rec.str()));
  }
  for (const Matrix* p : params) {
    std::ostringstream rec;
    SetMaxPrecision(&rec);
    WriteMatrix(*p, &rec);
    GVEX_RETURN_NOT_OK(WriteSection(out, rec.str()));
  }
  (*out) << kEndTag << " " << (1 + params.size()) << "\n";
  if (!out->good()) return Status::IoError("model write failed");
  return Status::OK();
}

Status GcnSerializer::WriteV1(const GcnClassifier& model, std::ostream* out) {
  (*out) << kMagicV1 << "\n";
  WriteConfigLine(model.config(), out);
  for (const Matrix* p : model.Parameters()) WriteMatrix(*p, out);
  if (!out->good()) return Status::IoError("model write failed");
  return Status::OK();
}

Result<GcnClassifier> GcnSerializer::Read(std::istream* in) {
  GVEX_FAILPOINT_RETURN("gnn.serialize.read");
  std::string magic;
  if (!((*in) >> magic)) return Status::IoError("bad model magic");
  if (magic == kMagicV2) return ReadV2Body(in);
  if (magic == kMagicV1) return ReadV1Body(in);
  return Status::IoError("bad model magic");
}

Status GcnSerializer::Save(const GcnClassifier& model,
                           const std::string& path) {
  return RetryIo([&] {
    return AtomicSave(
        path, [&](std::ostream* out) { return Write(model, out); });
  });
}

Result<GcnClassifier> GcnSerializer::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IoError("cannot open " + path);
  return Read(&in);
}

}  // namespace gvex
