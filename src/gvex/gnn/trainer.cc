#include "gvex/gnn/trainer.h"

#include <algorithm>

#include "gvex/common/logging.h"
#include "gvex/common/rng.h"
#include "gvex/obs/obs.h"

namespace gvex {

TrainReport Trainer::Fit(GcnClassifier* model, const GraphDatabase& db,
                         const DataSplit& split) const {
  TrainReport report;
  if (split.train.empty()) return report;
  GVEX_SPAN("trainer.fit");

  AdamOptimizer optimizer(config_.adam);
  Rng rng(config_.shuffle_seed);
  std::vector<size_t> order = split.train;

  // Track the best parameters seen on the validation split; ties on
  // validation accuracy break toward lower training loss so continued
  // training keeps sharpening the decision boundary (confident
  // probabilities matter to downstream fidelity measurements).
  std::vector<Matrix> best_params;
  float best_val = -1.0f;
  float best_loss = 1e30f;
  size_t since_best = 0;
  auto snapshot = [&]() {
    best_params.clear();
    for (const Matrix* p : model->Parameters()) best_params.push_back(*p);
  };
  auto restore = [&]() {
    if (best_params.empty()) return;
    auto params = model->MutableParameters();
    for (size_t i = 0; i < params.size(); ++i) *params[i] = best_params[i];
  };

  for (size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(&order);
    float epoch_loss = 0.0f;
    size_t seen = 0;
    for (size_t start = 0; start < order.size();
         start += config_.batch_size) {
      GcnGradients grads = model->ZeroGradients();
      size_t end = std::min(order.size(), start + config_.batch_size);
      size_t batch = end - start;
      for (size_t i = start; i < end; ++i) {
        const Graph& g = db.graph(order[i]);
        if (g.num_nodes() == 0) continue;
        GcnTrace trace = model->Forward(g);
        epoch_loss += model->BackwardFromLabel(trace, db.label(order[i]),
                                               &grads);
        ++seen;
      }
      if (batch > 0) {
        grads.Scale(1.0f / static_cast<float>(batch));
        auto params = model->MutableParameters();
        auto slots = GcnClassifier::GradientSlots(&grads);
        optimizer.Step(params, slots);
      }
    }
    GVEX_COUNTER_INC("trainer.epochs");
    report.epochs_run = epoch + 1;
    report.final_train_loss =
        seen > 0 ? epoch_loss / static_cast<float>(seen) : 0.0f;

    float val = split.validation.empty()
                    ? -report.final_train_loss  // fall back to loss
                    : Evaluate(*model, db, split.validation);
    if (val > best_val ||
        (val == best_val && report.final_train_loss < best_loss)) {
      best_val = val;
      best_loss = report.final_train_loss;
      snapshot();
      since_best = 0;
    } else if (config_.patience > 0 && ++since_best >= config_.patience) {
      break;
    }
    if (config_.verbose && epoch % 10 == 0) {
      GVEX_LOG(Info) << "epoch " << epoch << " loss "
                     << report.final_train_loss << " val " << val;
    }
  }
  restore();
  report.best_validation_accuracy = std::max(0.0f, best_val);
  report.test_accuracy = Evaluate(*model, db, split.test);
  return report;
}

float Trainer::Evaluate(const GcnClassifier& model, const GraphDatabase& db,
                        const std::vector<size_t>& indices) {
  if (indices.empty()) return 0.0f;
  size_t correct = 0;
  for (size_t i : indices) {
    if (model.Predict(db.graph(i)) == db.label(i)) ++correct;
  }
  return static_cast<float>(correct) / static_cast<float>(indices.size());
}

std::vector<ClassLabel> AssignLabels(const GcnClassifier& model,
                                     const GraphDatabase& db) {
  std::vector<ClassLabel> labels(db.size());
  for (size_t i = 0; i < db.size(); ++i) {
    labels[i] = model.Predict(db.graph(i));
  }
  return labels;
}

}  // namespace gvex
