// Training loop for the GCN classifier: mini-batch gradient accumulation,
// Adam updates, validation-based best-model tracking, and accuracy
// reporting. Produces the "fixed, pretrained M" every explainer consumes.
#pragma once

#include <cstdint>
#include <vector>

#include "gvex/gnn/model.h"
#include "gvex/gnn/optimizer.h"
#include "gvex/graph/graph_db.h"

namespace gvex {

struct TrainerConfig {
  size_t epochs = 200;
  size_t batch_size = 16;
  AdamConfig adam;
  uint64_t shuffle_seed = 7;
  /// Stop early when validation accuracy has not improved for this many
  /// epochs (0 disables early stopping).
  size_t patience = 40;
  bool verbose = false;
};

struct TrainReport {
  size_t epochs_run = 0;
  float final_train_loss = 0.0f;
  float best_validation_accuracy = 0.0f;
  float test_accuracy = 0.0f;
};

/// \brief Trains `model` in place on db[split.train], early-stops on
/// validation accuracy, and reports test accuracy.
class Trainer {
 public:
  explicit Trainer(TrainerConfig config = {}) : config_(config) {}

  TrainReport Fit(GcnClassifier* model, const GraphDatabase& db,
                  const DataSplit& split) const;

  /// Accuracy of `model` over the listed graph indices.
  static float Evaluate(const GcnClassifier& model, const GraphDatabase& db,
                        const std::vector<size_t>& indices);

 private:
  TrainerConfig config_;
};

/// \brief Labels assigned by M to every graph in the database — the l = M(G)
/// assignments that define label groups for explanation.
std::vector<ClassLabel> AssignLabels(const GcnClassifier& model,
                                     const GraphDatabase& db);

}  // namespace gvex
