// Save/load trained GCN models so benches can reuse pretrained classifiers
// instead of retraining per experiment.
#pragma once

#include <iosfwd>
#include <string>

#include "gvex/common/result.h"
#include "gvex/gnn/model.h"

namespace gvex {

class GcnSerializer {
 public:
  static Status Write(const GcnClassifier& model, std::ostream* out);
  static Result<GcnClassifier> Read(std::istream* in);

  static Status Save(const GcnClassifier& model, const std::string& path);
  static Result<GcnClassifier> Load(const std::string& path);
};

}  // namespace gvex
