// Save/load trained GCN models so benches can reuse pretrained classifiers
// instead of retraining per experiment.
//
// Write emits the v2 format: a config section plus one CRC32-framed
// section per parameter tensor, with an end marker for truncation
// detection. Read accepts v2 and legacy v1. Save is atomic (temp +
// rename) with retry on transient IO errors.
#pragma once

#include <iosfwd>
#include <string>

#include "gvex/common/result.h"
#include "gvex/gnn/model.h"

namespace gvex {

class GcnSerializer {
 public:
  static Status Write(const GcnClassifier& model, std::ostream* out);
  static Result<GcnClassifier> Read(std::istream* in);

  /// Legacy v1 stream writer (migration tooling and compat tests).
  static Status WriteV1(const GcnClassifier& model, std::ostream* out);

  static Status Save(const GcnClassifier& model, const std::string& path);
  static Result<GcnClassifier> Load(const std::string& path);
};

}  // namespace gvex
