#include "gvex/gnn/model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "gvex/common/string_util.h"
#include "gvex/obs/obs.h"
#include "gvex/tensor/ops.h"

namespace gvex {

void GcnGradients::Scale(float s) {
  for (auto& w : conv_weights) ScaleInPlace(&w, s);
  for (auto& b : conv_biases) ScaleInPlace(&b, s);
  ScaleInPlace(&fc_weight, s);
  ScaleInPlace(&fc_bias, s);
}

void GcnGradients::Accumulate(const GcnGradients& other) {
  for (size_t i = 0; i < conv_weights.size(); ++i) {
    AddInPlace(&conv_weights[i], other.conv_weights[i]);
    AddInPlace(&conv_biases[i], other.conv_biases[i]);
  }
  AddInPlace(&fc_weight, other.fc_weight);
  AddInPlace(&fc_bias, other.fc_bias);
}

ClassLabel GcnTrace::predicted() const {
  if (logits.empty()) return GcnClassifier::kNoLabel;
  return static_cast<ClassLabel>(
      std::max_element(logits.begin(), logits.end()) - logits.begin());
}

Result<GcnClassifier> GcnClassifier::Create(const GcnConfig& config) {
  if (config.input_dim == 0 || config.hidden_dim == 0 ||
      config.num_layers == 0 || config.num_classes < 2) {
    return Status::InvalidArgument(
        StrFormat("invalid GcnConfig: input=%zu hidden=%zu layers=%zu "
                  "classes=%zu",
                  config.input_dim, config.hidden_dim, config.num_layers,
                  config.num_classes));
  }
  GcnClassifier m;
  m.config_ = config;
  Rng rng(config.seed);
  for (size_t i = 0; i < config.num_layers; ++i) {
    size_t in = (i == 0) ? config.input_dim : config.hidden_dim;
    m.conv_weights_.push_back(
        Matrix::GlorotUniform(in, config.hidden_dim, &rng));
    m.conv_biases_.push_back(Matrix(1, config.hidden_dim));
  }
  m.fc_weight_ =
      Matrix::GlorotUniform(config.hidden_dim, config.num_classes, &rng);
  m.fc_bias_ = Matrix(1, config.num_classes);
  return m;
}

GcnTrace GcnClassifier::Forward(const Graph& g) const {
  if (g.num_nodes() == 0) return GcnTrace{};
  assert(g.has_features() && g.feature_dim() == config_.input_dim);
  const std::vector<float>* weights =
      config_.edge_type_weights.empty() ? nullptr
                                        : &config_.edge_type_weights;
  return ForwardWithPropagation(
      g.features(), g.PropagationOperator(config_.propagation, weights));
}

GcnTrace GcnClassifier::ForwardWithPropagation(const Matrix& x0,
                                               const CsrMatrix& s) const {
  GcnTrace trace;
  if (x0.rows() == 0) return trace;
  assert(x0.rows() == s.n());
  GVEX_COUNTER_INC("gnn.forward_calls");
  GVEX_LATENCY_US("gnn.forward_us");
  trace.s = s;
  trace.x.push_back(x0);
  trace.pre.reserve(config_.num_layers);
  for (size_t i = 0; i < config_.num_layers; ++i) {
    // pre = S * X * W + b ; X' = ReLU(pre)
    Matrix agg = s.MultiplyDense(trace.x.back());
    Matrix pre = MatMul(agg, conv_weights_[i]);
    AddRowBias(&pre, conv_biases_[i].Row(0));
    trace.x.push_back(Relu(pre));
    trace.pre.push_back(std::move(pre));
  }
  ColumnMax(trace.x.back(), &trace.pooled, &trace.argmax);

  trace.logits.assign(config_.num_classes, 0.0f);
  for (size_t c = 0; c < config_.num_classes; ++c) {
    float acc = fc_bias_.At(0, c);
    for (size_t h = 0; h < config_.hidden_dim; ++h) {
      acc += trace.pooled[h] * fc_weight_.At(h, c);
    }
    trace.logits[c] = acc;
  }

  // Stable softmax.
  float mx = *std::max_element(trace.logits.begin(), trace.logits.end());
  trace.probs.resize(config_.num_classes);
  float sum = 0.0f;
  for (size_t c = 0; c < config_.num_classes; ++c) {
    trace.probs[c] = std::exp(trace.logits[c] - mx);
    sum += trace.probs[c];
  }
  for (auto& p : trace.probs) p /= sum;
  return trace;
}

std::vector<float> GcnClassifier::PredictProba(const Graph& g) const {
  GcnTrace t = Forward(g);
  return t.probs;
}

ClassLabel GcnClassifier::Predict(const Graph& g) const {
  return Forward(g).predicted();
}

float GcnClassifier::ProbabilityOf(const Graph& g, ClassLabel label) const {
  if (label < 0) return 0.0f;
  GcnTrace t = Forward(g);
  if (t.probs.empty() || static_cast<size_t>(label) >= t.probs.size()) {
    return 0.0f;
  }
  return t.probs[static_cast<size_t>(label)];
}

Matrix GcnClassifier::NodeEmbeddings(const Graph& g) const {
  GcnTrace t = Forward(g);
  if (t.x.empty()) return Matrix();
  return t.x.back();
}

namespace {

// dlogits for softmax cross-entropy: probs - onehot(y); returns loss.
float CrossEntropyGrad(const std::vector<float>& probs, ClassLabel y,
                       std::vector<float>* dlogits) {
  assert(y >= 0 && static_cast<size_t>(y) < probs.size());
  *dlogits = probs;
  (*dlogits)[static_cast<size_t>(y)] -= 1.0f;
  float p = std::max(probs[static_cast<size_t>(y)], 1e-12f);
  return -std::log(p);
}

}  // namespace

float GcnClassifier::BackwardFromLabel(const GcnTrace& trace, ClassLabel y,
                                       GcnGradients* grads) const {
  assert(!trace.logits.empty());
  GVEX_COUNTER_INC("gnn.backward_calls");
  std::vector<float> dlogits;
  float loss = CrossEntropyGrad(trace.probs, y, &dlogits);

  // FC head: logits = pooled . W + b.
  std::vector<float> dpooled(config_.hidden_dim, 0.0f);
  for (size_t c = 0; c < config_.num_classes; ++c) {
    grads->fc_bias.At(0, c) += dlogits[c];
    for (size_t h = 0; h < config_.hidden_dim; ++h) {
      grads->fc_weight.At(h, c) += trace.pooled[h] * dlogits[c];
      dpooled[h] += fc_weight_.At(h, c) * dlogits[c];
    }
  }

  // Max-pool routes each column's gradient to its winning row.
  size_t n = trace.x.back().rows();
  Matrix dx(n, config_.hidden_dim);
  for (size_t h = 0; h < config_.hidden_dim; ++h) {
    dx.At(trace.argmax[h], h) = dpooled[h];
  }

  // Conv layers, last to first. pre_i = S x_i W_i + b_i ; x_{i+1}=ReLU(pre_i).
  for (size_t layer = config_.num_layers; layer-- > 0;) {
    Matrix dpre = ReluBackward(trace.pre[layer], dx);
    // Bias gradient: column sums of dpre.
    for (size_t r = 0; r < dpre.rows(); ++r) {
      const float* p = dpre.RowPtr(r);
      for (size_t c = 0; c < dpre.cols(); ++c) {
        grads->conv_biases[layer].At(0, c) += p[c];
      }
    }
    // t = S^T dpre; dW = x^T t; dx_prev = t W^T.
    Matrix t = trace.s.TransposeMultiplyDense(dpre);
    AddInPlace(&grads->conv_weights[layer],
               MatMulTransA(trace.x[layer], t));
    if (layer > 0) dx = MatMulTransB(t, conv_weights_[layer]);
  }
  return loss;
}

float GcnClassifier::BackwardToPropagation(const GcnTrace& trace, ClassLabel y,
                                           std::vector<float>* ds) const {
  assert(!trace.logits.empty());
  std::vector<float> dlogits;
  float loss = CrossEntropyGrad(trace.probs, y, &dlogits);

  std::vector<float> dpooled(config_.hidden_dim, 0.0f);
  for (size_t c = 0; c < config_.num_classes; ++c) {
    for (size_t h = 0; h < config_.hidden_dim; ++h) {
      dpooled[h] += fc_weight_.At(h, c) * dlogits[c];
    }
  }
  size_t n = trace.x.back().rows();
  Matrix dx(n, config_.hidden_dim);
  for (size_t h = 0; h < config_.hidden_dim; ++h) {
    dx.At(trace.argmax[h], h) = dpooled[h];
  }

  ds->assign(trace.s.nnz(), 0.0f);
  for (size_t layer = config_.num_layers; layer-- > 0;) {
    Matrix dpre = ReluBackward(trace.pre[layer], dx);
    // dL/dS_rc = dot(dpre[r], Z[c]) with Z = x_layer W_layer.
    Matrix z = MatMul(trace.x[layer], conv_weights_[layer]);
    const auto& row_ptr = trace.s.row_ptr();
    const auto& col_idx = trace.s.col_idx();
    for (size_t r = 0; r < n; ++r) {
      const float* dp = dpre.RowPtr(r);
      for (size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
        const float* zr = z.RowPtr(col_idx[k]);
        float acc = 0.0f;
        for (size_t h = 0; h < config_.hidden_dim; ++h) acc += dp[h] * zr[h];
        (*ds)[k] += acc;
      }
    }
    if (layer > 0) {
      Matrix t = trace.s.TransposeMultiplyDense(dpre);
      dx = MatMulTransB(t, conv_weights_[layer]);
    }
  }
  return loss;
}

Matrix GcnClassifier::InputLogitGradient(const GcnTrace& trace,
                                         ClassLabel y) const {
  assert(!trace.logits.empty());
  std::vector<float> dlogits(config_.num_classes, 0.0f);
  dlogits[static_cast<size_t>(y)] = 1.0f;
  return BackpropLogitsToInput(trace, dlogits);
}

Matrix GcnClassifier::InputGradient(const GcnTrace& trace,
                                    ClassLabel y) const {
  assert(!trace.logits.empty());
  std::vector<float> dlogits;
  CrossEntropyGrad(trace.probs, y, &dlogits);
  return BackpropLogitsToInput(trace, dlogits);
}

Matrix GcnClassifier::BackpropLogitsToInput(
    const GcnTrace& trace, const std::vector<float>& dlogits) const {
  std::vector<float> dpooled(config_.hidden_dim, 0.0f);
  for (size_t c = 0; c < config_.num_classes; ++c) {
    for (size_t h = 0; h < config_.hidden_dim; ++h) {
      dpooled[h] += fc_weight_.At(h, c) * dlogits[c];
    }
  }
  size_t n = trace.x.back().rows();
  Matrix dx(n, config_.hidden_dim);
  for (size_t h = 0; h < config_.hidden_dim; ++h) {
    dx.At(trace.argmax[h], h) = dpooled[h];
  }
  // Propagate all the way to the input layer (cf. BackwardFromLabel, which
  // stops at layer 0's parameters).
  for (size_t layer = config_.num_layers; layer-- > 0;) {
    Matrix dpre = ReluBackward(trace.pre[layer], dx);
    Matrix t = trace.s.TransposeMultiplyDense(dpre);
    dx = MatMulTransB(t, conv_weights_[layer]);
  }
  return dx;  // n x input_dim
}

GcnGradients GcnClassifier::ZeroGradients() const {
  GcnGradients g;
  for (size_t i = 0; i < config_.num_layers; ++i) {
    g.conv_weights.push_back(
        Matrix(conv_weights_[i].rows(), conv_weights_[i].cols()));
    g.conv_biases.push_back(Matrix(1, config_.hidden_dim));
  }
  g.fc_weight = Matrix(config_.hidden_dim, config_.num_classes);
  g.fc_bias = Matrix(1, config_.num_classes);
  return g;
}

std::vector<Matrix*> GcnClassifier::MutableParameters() {
  std::vector<Matrix*> params;
  for (auto& w : conv_weights_) params.push_back(&w);
  for (auto& b : conv_biases_) params.push_back(&b);
  params.push_back(&fc_weight_);
  params.push_back(&fc_bias_);
  return params;
}

std::vector<const Matrix*> GcnClassifier::Parameters() const {
  std::vector<const Matrix*> params;
  for (const auto& w : conv_weights_) params.push_back(&w);
  for (const auto& b : conv_biases_) params.push_back(&b);
  params.push_back(&fc_weight_);
  params.push_back(&fc_bias_);
  return params;
}

std::vector<Matrix*> GcnClassifier::GradientSlots(GcnGradients* grads) {
  std::vector<Matrix*> slots;
  for (auto& w : grads->conv_weights) slots.push_back(&w);
  for (auto& b : grads->conv_biases) slots.push_back(&b);
  slots.push_back(&grads->fc_weight);
  slots.push_back(&grads->fc_bias);
  return slots;
}

}  // namespace gvex
