// GcnClassifier: the k-layer graph convolutional network of Eq. 1, with a
// max-pool readout and a fully connected head — the architecture the paper
// trains for every dataset (§6.1: 3 conv layers, hidden dim 128, max pool,
// FC). Implemented from scratch with explicit forward traces and manual
// backprop so the same machinery powers training, inference (EVerify), and
// mask-gradient baselines (GNNExplainer).
#pragma once

#include <cstdint>
#include <vector>

#include "gvex/common/result.h"
#include "gvex/common/rng.h"
#include "gvex/graph/graph.h"
#include "gvex/tensor/csr.h"
#include "gvex/tensor/matrix.h"

namespace gvex {

/// \brief Architecture hyper-parameters.
struct GcnConfig {
  size_t input_dim = 0;
  size_t hidden_dim = 64;
  size_t num_layers = 3;  // k in the paper
  size_t num_classes = 2;
  uint64_t seed = 42;
  /// Optional edge-type weights applied inside the propagation operator
  /// (the paper's edge-feature future-work direction). Empty = every edge
  /// weighs 1 (plain GCN).
  std::vector<float> edge_type_weights;
  /// Message-passing aggregator. GVEX is model-agnostic over any
  /// "S · X · W" message-passing scheme; GCN (Eq. 1) is the paper's
  /// evaluation model, the SAGE-mean and GIN-sum flavors exercise the
  /// model-agnostic claim.
  Graph::PropagationKind propagation = Graph::PropagationKind::kGcnSymmetric;
};

/// \brief Parameter gradients, shape-matched to the model parameters.
struct GcnGradients {
  std::vector<Matrix> conv_weights;  // [L] input/hidden x hidden
  std::vector<Matrix> conv_biases;   // [L] 1 x hidden
  Matrix fc_weight;                  // hidden x classes
  Matrix fc_bias;                    // 1 x classes

  void Scale(float s);
  void Accumulate(const GcnGradients& other);
};

/// \brief Everything the forward pass computed, retained for backprop and
/// for explainers that need intermediate node embeddings.
struct GcnTrace {
  CsrMatrix s;                 // propagation operator used
  std::vector<Matrix> x;       // x[0] = input features; x[i] = layer-i output
  std::vector<Matrix> pre;     // pre[i] = pre-activation of layer i+1
  std::vector<float> pooled;   // max-pooled graph embedding (hidden)
  std::vector<size_t> argmax;  // row winning each pooled column
  std::vector<float> logits;   // num_classes
  std::vector<float> probs;    // softmax(logits)

  ClassLabel predicted() const;
};

/// \brief The GNN-based classifier M. Immutable architecture; parameters
/// mutate only through the optimizer during training.
class GcnClassifier {
 public:
  /// Glorot-initialized model.
  static Result<GcnClassifier> Create(const GcnConfig& config);

  const GcnConfig& config() const { return config_; }
  size_t num_layers() const { return config_.num_layers; }
  size_t num_classes() const { return config_.num_classes; }

  // ---- inference -----------------------------------------------------------

  /// Full forward pass on a graph. Graphs with zero nodes yield an empty
  /// trace whose predicted() is kNoLabel.
  GcnTrace Forward(const Graph& g) const;

  /// Forward with a caller-supplied feature matrix and propagation operator
  /// (the hook GNNExplainer uses to inject a masked adjacency).
  GcnTrace ForwardWithPropagation(const Matrix& x0, const CsrMatrix& s) const;

  /// Class probabilities; uniform is never returned for empty graphs —
  /// callers must treat kNoLabel specially.
  std::vector<float> PredictProba(const Graph& g) const;

  /// argmax label, or kNoLabel for empty graphs.
  ClassLabel Predict(const Graph& g) const;

  /// Probability assigned to `label` (0 for empty graphs).
  float ProbabilityOf(const Graph& g, ClassLabel label) const;

  /// Final-layer node embeddings X^k (the representation behind the
  /// diversity measure, Eq. 6).
  Matrix NodeEmbeddings(const Graph& g) const;

  // ---- training ------------------------------------------------------------

  /// Cross-entropy loss for the trace against `y`; accumulates parameter
  /// gradients into `grads` (which must be shape-initialized via
  /// ZeroGradients). Returns the loss value.
  float BackwardFromLabel(const GcnTrace& trace, ClassLabel y,
                          GcnGradients* grads) const;

  /// As above, but additionally computes the gradient of the loss w.r.t.
  /// the propagation-operator entries (aligned with trace.s.values()).
  /// Used by mask-learning explainers.
  float BackwardToPropagation(const GcnTrace& trace, ClassLabel y,
                              std::vector<float>* ds) const;

  /// Gradient of the loss for class `y` w.r.t. the input features
  /// (n x input_dim). Row L1 norms are the classic gradient-saliency
  /// signal: how much each node's features drive the prediction. Note the
  /// loss gradient saturates on confident models; prefer
  /// InputLogitGradient for saliency ranking.
  Matrix InputGradient(const GcnTrace& trace, ClassLabel y) const;

  /// Gradient of the raw class-y logit w.r.t. the input features — does
  /// not saturate when softmax probabilities reach 0/1.
  Matrix InputLogitGradient(const GcnTrace& trace, ClassLabel y) const;

  GcnGradients ZeroGradients() const;

  /// Flat views of parameters/gradients for the optimizer.
  std::vector<Matrix*> MutableParameters();
  std::vector<const Matrix*> Parameters() const;
  static std::vector<Matrix*> GradientSlots(GcnGradients* grads);

  static constexpr ClassLabel kNoLabel = -1;

  /// Default-constructed models are empty shells for deferred assignment
  /// (e.g. fixture members); use Create() to obtain a usable model.
  GcnClassifier() = default;

 private:
  Matrix BackpropLogitsToInput(const GcnTrace& trace,
                               const std::vector<float>& dlogits) const;

  GcnConfig config_;
  std::vector<Matrix> conv_weights_;  // [L]
  std::vector<Matrix> conv_biases_;   // [L] 1 x hidden
  Matrix fc_weight_;                  // hidden x classes
  Matrix fc_bias_;                    // 1 x classes

  friend class GcnSerializer;
};

}  // namespace gvex
