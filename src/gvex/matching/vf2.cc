#include "gvex/matching/vf2.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "gvex/obs/obs.h"

namespace gvex {
namespace {

// Search state for one (pattern, target) matching run — the indexed fast
// path (see vf2.h and docs/PERFORMANCE.md for the index design).
class Vf2State {
 public:
  Vf2State(const Graph& pattern, const Graph& target,
           const MatchOptions& options,
           const std::function<bool(const Match&)>& cb)
      : pattern_(pattern),
        target_(target),
        options_(options),
        cb_(cb),
        assignment_(pattern.num_nodes(), kInvalidNode),
        used_(target.num_nodes(), false) {
    // Undirected adjacency view of the pattern (for ordering and anchor
    // selection; feasibility still checks directions).
    pattern_undirected_.resize(pattern.num_nodes());
    for (NodeId u = 0; u < pattern.num_nodes(); ++u) {
      for (const auto& nb : pattern.neighbors(u)) {
        pattern_undirected_[u].push_back(nb.node);
        if (pattern.directed()) pattern_undirected_[nb.node].push_back(u);
      }
    }
    BuildOrder();
    if (order_.empty()) return;  // disconnected: Run() rejects
    BuildIndex();
  }

  size_t Run() {
    GVEX_SPAN("vf2.match");
    GVEX_COUNTER_INC("vf2.calls");
    if (order_.empty() || pattern_.num_nodes() > target_.num_nodes()) {
      return 0;
    }
    if (label_infeasible_) {
      // The pattern asks for more nodes of some label than the target
      // owns: no assignment can exist. One O(target) pass serves most
      // negative HasMatch probes without entering the search at all.
      GVEX_COUNTER_INC("vf2.label_rejects");
      return 0;
    }
    Extend(0);
    // The recursion keeps its tallies in locals and flushes once per run:
    // a sharded-atomic add inside Extend would still be per-node work.
    GVEX_COUNTER_ADD("vf2.steps", steps_);
    GVEX_COUNTER_ADD("vf2.matches", delivered_);
    GVEX_COUNTER_ADD("vf2.candidates_pruned", pruned_);
    return delivered_;
  }

 private:
  // One pass over the target builds everything the search needs: the
  // root's label bucket (ascending node order — a subsequence of the
  // reference's full node scan), a per-pattern-label count for the
  // histogram subsumption test, and — for directed targets — a reverse
  // adjacency list. Patterns have few distinct labels, so the histogram
  // is a small linear-scan table rather than a hash map.
  void BuildIndex() {
    struct LabelNeed {
      NodeType label;
      size_t need = 0;
      size_t have = 0;
    };
    std::vector<LabelNeed> hist;
    for (NodeId v = 0; v < pattern_.num_nodes(); ++v) {
      NodeType t = pattern_.node_type(v);
      bool found = false;
      for (auto& e : hist) {
        if (e.label == t) {
          ++e.need;
          found = true;
          break;
        }
      }
      if (!found) hist.push_back({t, 1, 0});
    }
    const NodeType root_label = pattern_.node_type(order_[0]);
    root_candidates_.reserve(target_.num_nodes() / (hist.size() + 1) + 1);
    for (NodeId v = 0; v < target_.num_nodes(); ++v) {
      NodeType t = target_.node_type(v);
      for (auto& e : hist) {
        if (e.label == t) {
          ++e.have;
          break;
        }
      }
      if (t == root_label) root_candidates_.push_back(v);
    }
    for (const auto& e : hist) {
      if (e.have < e.need) {
        label_infeasible_ = true;
        return;
      }
    }
    if (target_.directed()) {
      reverse_adj_.resize(target_.num_nodes());
      for (NodeId u = 0; u < target_.num_nodes(); ++u) {
        for (const auto& nb : target_.neighbors(u)) {
          reverse_adj_[nb.node].push_back(u);
        }
      }
    }
  }

  // Match pattern nodes in a connectivity-respecting order, starting from
  // the highest-degree node: each subsequent node (except roots of new
  // components, which we disallow — patterns must be connected) has at
  // least one already-matched neighbor, enabling candidate restriction.
  void BuildOrder() {
    const size_t np = pattern_.num_nodes();
    if (np == 0) return;
    std::vector<bool> placed(np, false);
    NodeId root = 0;
    for (NodeId v = 1; v < np; ++v) {
      if (pattern_undirected_[v].size() > pattern_undirected_[root].size()) {
        root = v;
      }
    }
    order_.push_back(root);
    placed[root] = true;
    // Greedy BFS-like extension preferring nodes with most placed neighbors.
    while (order_.size() < np) {
      NodeId best = kInvalidNode;
      size_t best_links = 0;
      for (NodeId v = 0; v < np; ++v) {
        if (placed[v]) continue;
        size_t links = 0;
        for (NodeId u : pattern_undirected_[v]) {
          if (placed[u]) ++links;
        }
        if (links > best_links ||
            (best == kInvalidNode && links > 0 && best_links == 0)) {
          best = v;
          best_links = links;
        }
      }
      if (best == kInvalidNode || best_links == 0) {
        // Disconnected pattern: refuse (paper patterns are connected).
        order_.clear();
        return;
      }
      order_.push_back(best);
      placed[best] = true;
    }
  }

  // O(1) prefilter applied before the adjacency-consistency check. Label
  // inequality implies the reference Feasible() rejects; degree(t) <
  // degree(p) means the candidate can never close a match under either
  // semantics (every pattern edge at pv must map to a distinct target
  // edge at tv), so pruning it preserves the delivered match sequence.
  // The reference only degree-prunes under kSubgraph, though, so under
  // kInduced it recurses into (and spends steps on) subtrees this filter
  // skips — budgeted runs diverge in truncation point, not in validity;
  // see the equivalence contract in vf2.h.
  bool QuickFeasible(NodeId pv, NodeId tv) {
    if (pattern_.node_type(pv) != target_.node_type(tv) ||
        target_.degree(tv) < pattern_.degree(pv)) {
      ++pruned_;
      return false;
    }
    return true;
  }

  // The adjacency-consistency half of the reference Feasible(); the
  // type/degree half has already been established by the caller (root
  // bucket + degree filter at depth 0, QuickFeasible beyond).
  bool Consistent(NodeId pv, NodeId tv) {
    // Check consistency against all already-assigned pattern nodes. For
    // directed graphs each direction is verified independently.
    auto check_direction = [&](NodeId pa, NodeId pb, NodeId ta,
                               NodeId tb) -> bool {
      bool p_edge = pattern_.HasEdge(pa, pb);
      bool t_edge = target_.HasEdge(ta, tb);
      if (p_edge) {
        if (!t_edge) return false;
        if (pattern_.GetEdgeType(pa, pb) != target_.GetEdgeType(ta, tb)) {
          return false;
        }
      } else if (options_.semantics == MatchSemantics::kInduced && t_edge) {
        return false;
      }
      return true;
    };
    for (NodeId pu = 0; pu < pattern_.num_nodes(); ++pu) {
      NodeId tu = assignment_[pu];
      if (tu == kInvalidNode || pu == pv) continue;
      if (!check_direction(pu, pv, tu, tv)) return false;
      if (pattern_.directed() && !check_direction(pv, pu, tv, tu)) {
        return false;
      }
    }
    return true;
  }

  // Returns false to abort the whole search (budget exhausted / cb stop).
  bool Extend(size_t depth) {
    if (options_.max_steps > 0 && ++steps_ > options_.max_steps) return false;
    if (depth == order_.size()) {
      ++delivered_;
      if (!cb_(assignment_)) return false;
      if (options_.max_matches > 0 && delivered_ >= options_.max_matches) {
        return false;
      }
      return true;
    }
    NodeId pv = order_[depth];
    if (depth == 0) {
      // Root candidates come straight from the label bucket (ascending
      // node order, a subsequence of the reference's full node scan).
      const size_t need = pattern_.degree(pv);
      for (NodeId tv : root_candidates_) {
        if (target_.degree(tv) < need) {
          ++pruned_;
          continue;
        }
        if (!TryAssign(pv, tv, depth)) return false;
      }
    } else {
      // Restrict candidates to neighbors of an already-matched pattern
      // neighbor (always possible beyond the root).
      NodeId anchor_p = kInvalidNode;
      for (NodeId u : pattern_undirected_[pv]) {
        if (assignment_[u] != kInvalidNode) {
          anchor_p = u;
          break;
        }
      }
      assert(anchor_p != kInvalidNode);
      NodeId anchor_t = assignment_[anchor_p];
      for (const auto& nb : target_.neighbors(anchor_t)) {
        if (!QuickFeasible(pv, nb.node)) continue;
        if (!TryAssign(pv, nb.node, depth)) return false;
      }
      // Directed targets store out-edges at the source; if the pattern edge
      // may be realized as an in-edge of anchor_t, scan its sources too
      // (prebuilt reverse adjacency instead of an all-node HasEdge scan).
      if (target_.directed()) {
        for (NodeId tu : reverse_adj_[anchor_t]) {
          if (!QuickFeasible(pv, tu)) continue;
          if (!TryAssign(pv, tu, depth)) return false;
        }
      }
    }
    return true;
  }

  bool TryAssign(NodeId pv, NodeId tv, size_t depth) {
    if (used_[tv]) return true;
    if (!Consistent(pv, tv)) return true;
    assignment_[pv] = tv;
    used_[tv] = true;
    bool keep_going = Extend(depth + 1);
    assignment_[pv] = kInvalidNode;
    used_[tv] = false;
    return keep_going;
  }

  const Graph& pattern_;
  const Graph& target_;
  const MatchOptions& options_;
  const std::function<bool(const Match&)>& cb_;
  std::vector<std::vector<NodeId>> pattern_undirected_;
  std::vector<NodeId> order_;
  Match assignment_;
  std::vector<bool> used_;
  std::vector<NodeId> root_candidates_;  // the root label's bucket
  std::vector<std::vector<NodeId>> reverse_adj_;  // directed targets only
  bool label_infeasible_ = false;
  size_t steps_ = 0;
  size_t delivered_ = 0;
  size_t pruned_ = 0;
};

// The original unindexed search, kept verbatim (minus obs instrumentation)
// as the reference oracle behind Vf2ReferenceMatcher.
class ReferenceVf2State {
 public:
  ReferenceVf2State(const Graph& pattern, const Graph& target,
                    const MatchOptions& options,
                    const std::function<bool(const Match&)>& cb)
      : pattern_(pattern),
        target_(target),
        options_(options),
        cb_(cb),
        assignment_(pattern.num_nodes(), kInvalidNode),
        used_(target.num_nodes(), false) {
    pattern_undirected_.resize(pattern.num_nodes());
    for (NodeId u = 0; u < pattern.num_nodes(); ++u) {
      for (const auto& nb : pattern.neighbors(u)) {
        pattern_undirected_[u].push_back(nb.node);
        if (pattern.directed()) pattern_undirected_[nb.node].push_back(u);
      }
    }
    BuildOrder();
  }

  size_t Run() {
    if (order_.empty() || pattern_.num_nodes() > target_.num_nodes()) {
      return 0;
    }
    Extend(0);
    return delivered_;
  }

 private:
  void BuildOrder() {
    const size_t np = pattern_.num_nodes();
    if (np == 0) return;
    std::vector<bool> placed(np, false);
    NodeId root = 0;
    for (NodeId v = 1; v < np; ++v) {
      if (pattern_undirected_[v].size() > pattern_undirected_[root].size()) {
        root = v;
      }
    }
    order_.push_back(root);
    placed[root] = true;
    while (order_.size() < np) {
      NodeId best = kInvalidNode;
      size_t best_links = 0;
      for (NodeId v = 0; v < np; ++v) {
        if (placed[v]) continue;
        size_t links = 0;
        for (NodeId u : pattern_undirected_[v]) {
          if (placed[u]) ++links;
        }
        if (links > best_links ||
            (best == kInvalidNode && links > 0 && best_links == 0)) {
          best = v;
          best_links = links;
        }
      }
      if (best == kInvalidNode || best_links == 0) {
        order_.clear();
        return;
      }
      order_.push_back(best);
      placed[best] = true;
    }
  }

  bool Feasible(NodeId pv, NodeId tv) {
    if (pattern_.node_type(pv) != target_.node_type(tv)) return false;
    if (target_.degree(tv) < pattern_.degree(pv) &&
        options_.semantics == MatchSemantics::kSubgraph) {
      return false;
    }
    auto check_direction = [&](NodeId pa, NodeId pb, NodeId ta,
                               NodeId tb) -> bool {
      bool p_edge = pattern_.HasEdge(pa, pb);
      bool t_edge = target_.HasEdge(ta, tb);
      if (p_edge) {
        if (!t_edge) return false;
        if (pattern_.GetEdgeType(pa, pb) != target_.GetEdgeType(ta, tb)) {
          return false;
        }
      } else if (options_.semantics == MatchSemantics::kInduced && t_edge) {
        return false;
      }
      return true;
    };
    for (NodeId pu = 0; pu < pattern_.num_nodes(); ++pu) {
      NodeId tu = assignment_[pu];
      if (tu == kInvalidNode || pu == pv) continue;
      if (!check_direction(pu, pv, tu, tv)) return false;
      if (pattern_.directed() && !check_direction(pv, pu, tv, tu)) {
        return false;
      }
    }
    return true;
  }

  bool Extend(size_t depth) {
    if (options_.max_steps > 0 && ++steps_ > options_.max_steps) return false;
    if (depth == order_.size()) {
      ++delivered_;
      if (!cb_(assignment_)) return false;
      if (options_.max_matches > 0 && delivered_ >= options_.max_matches) {
        return false;
      }
      return true;
    }
    NodeId pv = order_[depth];
    if (depth == 0) {
      for (NodeId tv = 0; tv < target_.num_nodes(); ++tv) {
        if (!TryAssign(pv, tv, depth)) return false;
      }
    } else {
      NodeId anchor_p = kInvalidNode;
      for (NodeId u : pattern_undirected_[pv]) {
        if (assignment_[u] != kInvalidNode) {
          anchor_p = u;
          break;
        }
      }
      assert(anchor_p != kInvalidNode);
      NodeId anchor_t = assignment_[anchor_p];
      for (const auto& nb : target_.neighbors(anchor_t)) {
        if (!TryAssign(pv, nb.node, depth)) return false;
      }
      if (target_.directed()) {
        for (NodeId tu = 0; tu < target_.num_nodes(); ++tu) {
          if (target_.HasEdge(tu, anchor_t)) {
            if (!TryAssign(pv, tu, depth)) return false;
          }
        }
      }
    }
    return true;
  }

  bool TryAssign(NodeId pv, NodeId tv, size_t depth) {
    if (used_[tv]) return true;
    if (!Feasible(pv, tv)) return true;
    assignment_[pv] = tv;
    used_[tv] = true;
    bool keep_going = Extend(depth + 1);
    assignment_[pv] = kInvalidNode;
    used_[tv] = false;
    return keep_going;
  }

  const Graph& pattern_;
  const Graph& target_;
  const MatchOptions& options_;
  const std::function<bool(const Match&)>& cb_;
  std::vector<std::vector<NodeId>> pattern_undirected_;
  std::vector<NodeId> order_;
  Match assignment_;
  std::vector<bool> used_;
  size_t steps_ = 0;
  size_t delivered_ = 0;
};

}  // namespace

size_t Vf2Matcher::EnumerateMatches(
    const Graph& pattern, const Graph& target, const MatchOptions& options,
    const std::function<bool(const Match&)>& cb) {
  if (pattern.num_nodes() == 0) return 0;
  Vf2State state(pattern, target, options, cb);
  return state.Run();
}

std::vector<Match> Vf2Matcher::FindMatches(const Graph& pattern,
                                           const Graph& target,
                                           const MatchOptions& options) {
  std::vector<Match> matches;
  EnumerateMatches(pattern, target, options, [&](const Match& m) {
    matches.push_back(m);
    return true;
  });
  return matches;
}

bool Vf2Matcher::HasMatch(const Graph& pattern, const Graph& target,
                          const MatchOptions& options) {
  MatchOptions first_only = options;
  first_only.max_matches = 1;
  return EnumerateMatches(pattern, target, first_only,
                          [](const Match&) { return false; }) > 0;
}

size_t Vf2ReferenceMatcher::EnumerateMatches(
    const Graph& pattern, const Graph& target, const MatchOptions& options,
    const std::function<bool(const Match&)>& cb) {
  if (pattern.num_nodes() == 0) return 0;
  ReferenceVf2State state(pattern, target, options, cb);
  return state.Run();
}

std::vector<Match> Vf2ReferenceMatcher::FindMatches(
    const Graph& pattern, const Graph& target, const MatchOptions& options) {
  std::vector<Match> matches;
  EnumerateMatches(pattern, target, options, [&](const Match& m) {
    matches.push_back(m);
    return true;
  });
  return matches;
}

bool Vf2ReferenceMatcher::HasMatch(const Graph& pattern, const Graph& target,
                                   const MatchOptions& options) {
  MatchOptions first_only = options;
  first_only.max_matches = 1;
  return EnumerateMatches(pattern, target, first_only,
                          [](const Match&) { return false; }) > 0;
}

std::vector<std::pair<NodeId, NodeId>> EdgeList(const Graph& g) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(g.num_edges());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const auto& nb : g.neighbors(u)) {
      if (!g.directed() && nb.node < u) continue;
      edges.emplace_back(u, nb.node);
    }
  }
  return edges;
}

CoverageResult ComputeCoverage(const std::vector<Graph>& patterns,
                               const Graph& target,
                               const MatchOptions& options) {
  CoverageResult result;
  result.covered_nodes = DynamicBitset(target.num_nodes());
  auto edges = EdgeList(target);
  result.covered_edges = DynamicBitset(edges.size());

  // Edge -> index lookup for marking covered edges during enumeration.
  std::unordered_map<uint64_t, size_t> edge_index;
  edge_index.reserve(edges.size());
  auto edge_key = [](NodeId u, NodeId v) {
    return (static_cast<uint64_t>(u) << 32) | v;
  };
  for (size_t i = 0; i < edges.size(); ++i) {
    edge_index[edge_key(edges[i].first, edges[i].second)] = i;
  }
  auto edge_id = [&](NodeId u, NodeId v) -> size_t {
    if (!target.directed() && u > v) std::swap(u, v);
    auto it = edge_index.find(edge_key(u, v));
    return it == edge_index.end() ? static_cast<size_t>(-1) : it->second;
  };

  for (const Graph& p : patterns) {
    auto p_edges = EdgeList(p);
    Vf2Matcher::EnumerateMatches(p, target, options, [&](const Match& m) {
      ++result.num_matches;
      for (NodeId tv : m) result.covered_nodes.Set(tv);
      for (auto [pu, pv] : p_edges) {
        size_t idx = edge_id(m[pu], m[pv]);
        if (idx != static_cast<size_t>(-1)) result.covered_edges.Set(idx);
      }
      // Early exit if everything is already covered.
      return result.covered_nodes.Count() < target.num_nodes() ||
             result.covered_edges.Count() < edges.size();
    });
    if (result.covered_nodes.Count() == target.num_nodes() &&
        result.covered_edges.Count() == edges.size()) {
      break;
    }
  }
  return result;
}

}  // namespace gvex
