#include "gvex/matching/vf2.h"

#include <algorithm>
#include <cassert>
#include <memory>

#include "gvex/common/arena.h"
#include "gvex/obs/obs.h"

namespace gvex {
namespace {

// Reusable scratch for one matching run: every buffer the indexed search
// needs, hoisted out of per-call allocation. Vectors are resized, never
// reconstructed, so steady-state runs touch warm capacity and perform no
// heap allocation at all. One instance lives per thread; nested runs
// (a callback that matches again) and the arena kill switch fall back to
// a fresh heap-backed instance — the exact pre-arena behaviour.
struct MatcherScratch {
  struct LabelNeed {
    NodeType label;
    size_t need = 0;
    size_t have = 0;
  };

  // Flat undirected pattern adjacency (offsets + ids), in the same
  // insertion order the old vector-of-vectors build produced.
  std::vector<uint32_t> pu_offsets;
  std::vector<NodeId> pu_data;
  std::vector<uint32_t> pu_cursor;
  std::vector<uint8_t> placed;       // BuildOrder
  std::vector<NodeId> order;
  Match assignment;
  std::vector<uint8_t> used;
  std::vector<NodeId> root_candidates;
  std::vector<LabelNeed> hist;       // label histogram (few distinct labels)
  bool in_use = false;

  static MatcherScratch& ThreadInstance() {
    thread_local MatcherScratch scratch;
    return scratch;
  }

  // Borrow the thread's scratch, or own a fresh one when it is taken
  // (nested matching) or the arena/scratch switch is off.
  class Lease {
   public:
    Lease() {
      MatcherScratch& tls = ThreadInstance();
      if (arena::Enabled() && !tls.in_use) {
        scratch_ = &tls;
        tls.in_use = true;
      } else {
        owned_ = std::make_unique<MatcherScratch>();
        scratch_ = owned_.get();
      }
    }
    ~Lease() {
      if (owned_ == nullptr) scratch_->in_use = false;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    MatcherScratch& operator*() const { return *scratch_; }

   private:
    MatcherScratch* scratch_;
    std::unique_ptr<MatcherScratch> owned_;
  };
};

// Search state for one (pattern, target) matching run — the indexed fast
// path (see vf2.h and docs/PERFORMANCE.md for the index design). The
// target is traversed through its compact CSR view; all scratch comes
// from the leased MatcherScratch.
class Vf2State {
 public:
  Vf2State(const Graph& pattern, const CsrGraphView& target,
           const MatchOptions& options,
           const std::function<bool(const Match&)>& cb, MatcherScratch& s)
      : pattern_(pattern), target_(target), options_(options), cb_(cb), s_(s) {
    s_.assignment.assign(pattern.num_nodes(), kInvalidNode);
    s_.used.assign(target.num_nodes(), 0);
    BuildPatternUndirected();
    BuildOrder();
    if (s_.order.empty()) return;  // disconnected: Run() rejects
    BuildIndex();
  }

  size_t Run() {
    GVEX_SPAN("vf2.match");
    GVEX_COUNTER_INC("vf2.calls");
    if (s_.order.empty() || pattern_.num_nodes() > target_.num_nodes()) {
      return 0;
    }
    if (label_infeasible_) {
      // The pattern asks for more nodes of some label than the target
      // owns: no assignment can exist. One O(target) pass serves most
      // negative HasMatch probes without entering the search at all.
      GVEX_COUNTER_INC("vf2.label_rejects");
      return 0;
    }
    Extend(0);
    // The recursion keeps its tallies in locals and flushes once per run:
    // a sharded-atomic add inside Extend would still be per-node work.
    GVEX_COUNTER_ADD("vf2.steps", steps_);
    GVEX_COUNTER_ADD("vf2.matches", delivered_);
    GVEX_COUNTER_ADD("vf2.candidates_pruned", pruned_);
    return delivered_;
  }

 private:
  std::span<const NodeId> PatternUndirected(NodeId v) const {
    return {s_.pu_data.data() + s_.pu_offsets[v],
            s_.pu_offsets[v + 1] - s_.pu_offsets[v]};
  }

  // Undirected adjacency view of the pattern (for ordering and anchor
  // selection; feasibility still checks directions). Flat CSR built with
  // the same insertion sequence as the old per-node push_back loops, so
  // each node's neighbor order — and therefore anchor selection and the
  // delivered match sequence — is unchanged.
  void BuildPatternUndirected() {
    const size_t np = pattern_.num_nodes();
    s_.pu_offsets.assign(np + 1, 0);
    for (NodeId u = 0; u < np; ++u) {
      for (const auto& nb : pattern_.neighbors(u)) {
        ++s_.pu_offsets[u + 1];
        if (pattern_.directed()) ++s_.pu_offsets[nb.node + 1];
      }
    }
    for (NodeId v = 0; v < np; ++v) s_.pu_offsets[v + 1] += s_.pu_offsets[v];
    s_.pu_data.resize(s_.pu_offsets[np]);
    s_.pu_cursor.assign(s_.pu_offsets.begin(), s_.pu_offsets.end() - 1);
    for (NodeId u = 0; u < np; ++u) {
      for (const auto& nb : pattern_.neighbors(u)) {
        s_.pu_data[s_.pu_cursor[u]++] = nb.node;
        if (pattern_.directed()) s_.pu_data[s_.pu_cursor[nb.node]++] = u;
      }
    }
  }

  // One pass over the target builds everything the search needs: the
  // root's label bucket (ascending node order — a subsequence of the
  // reference's full node scan) and a per-pattern-label count for the
  // histogram subsumption test. Patterns have few distinct labels, so
  // the histogram is a small linear-scan table rather than a hash map.
  // (Directed targets' reverse adjacency now comes prebuilt with the
  // CSR view instead of being rebuilt per run.)
  void BuildIndex() {
    s_.hist.clear();
    for (NodeId v = 0; v < pattern_.num_nodes(); ++v) {
      NodeType t = pattern_.node_type(v);
      bool found = false;
      for (auto& e : s_.hist) {
        if (e.label == t) {
          ++e.need;
          found = true;
          break;
        }
      }
      if (!found) s_.hist.push_back({t, 1, 0});
    }
    const NodeType root_label = pattern_.node_type(s_.order[0]);
    s_.root_candidates.clear();
    s_.root_candidates.reserve(target_.num_nodes() / (s_.hist.size() + 1) + 1);
    for (NodeId v = 0; v < target_.num_nodes(); ++v) {
      NodeType t = target_.node_type(v);
      for (auto& e : s_.hist) {
        if (e.label == t) {
          ++e.have;
          break;
        }
      }
      if (t == root_label) s_.root_candidates.push_back(v);
    }
    for (const auto& e : s_.hist) {
      if (e.have < e.need) {
        label_infeasible_ = true;
        return;
      }
    }
  }

  // Match pattern nodes in a connectivity-respecting order, starting from
  // the highest-degree node: each subsequent node (except roots of new
  // components, which we disallow — patterns must be connected) has at
  // least one already-matched neighbor, enabling candidate restriction.
  void BuildOrder() {
    s_.order.clear();
    const size_t np = pattern_.num_nodes();
    if (np == 0) return;
    s_.placed.assign(np, 0);
    NodeId root = 0;
    for (NodeId v = 1; v < np; ++v) {
      if (PatternUndirected(v).size() > PatternUndirected(root).size()) {
        root = v;
      }
    }
    s_.order.push_back(root);
    s_.placed[root] = 1;
    // Greedy BFS-like extension preferring nodes with most placed neighbors.
    while (s_.order.size() < np) {
      NodeId best = kInvalidNode;
      size_t best_links = 0;
      for (NodeId v = 0; v < np; ++v) {
        if (s_.placed[v]) continue;
        size_t links = 0;
        for (NodeId u : PatternUndirected(v)) {
          if (s_.placed[u]) ++links;
        }
        if (links > best_links ||
            (best == kInvalidNode && links > 0 && best_links == 0)) {
          best = v;
          best_links = links;
        }
      }
      if (best == kInvalidNode || best_links == 0) {
        // Disconnected pattern: refuse (paper patterns are connected).
        s_.order.clear();
        return;
      }
      s_.order.push_back(best);
      s_.placed[best] = 1;
    }
  }

  // O(1) prefilter applied before the adjacency-consistency check. Label
  // inequality implies the reference Feasible() rejects; degree(t) <
  // degree(p) means the candidate can never close a match under either
  // semantics (every pattern edge at pv must map to a distinct target
  // edge at tv), so pruning it preserves the delivered match sequence.
  // The reference only degree-prunes under kSubgraph, though, so under
  // kInduced it recurses into (and spends steps on) subtrees this filter
  // skips — budgeted runs diverge in truncation point, not in validity;
  // see the equivalence contract in vf2.h.
  bool QuickFeasible(NodeId pv, NodeId tv) {
    if (pattern_.node_type(pv) != target_.node_type(tv) ||
        target_.degree(tv) < pattern_.degree(pv)) {
      ++pruned_;
      return false;
    }
    return true;
  }

  // The adjacency-consistency half of the reference Feasible(); the
  // type/degree half has already been established by the caller (root
  // bucket + degree filter at depth 0, QuickFeasible beyond).
  bool Consistent(NodeId pv, NodeId tv) {
    // Check consistency against all already-assigned pattern nodes. For
    // directed graphs each direction is verified independently.
    auto check_direction = [&](NodeId pa, NodeId pb, NodeId ta,
                               NodeId tb) -> bool {
      bool p_edge = pattern_.HasEdge(pa, pb);
      bool t_edge = target_.HasEdge(ta, tb);
      if (p_edge) {
        if (!t_edge) return false;
        if (pattern_.GetEdgeType(pa, pb) != target_.GetEdgeType(ta, tb)) {
          return false;
        }
      } else if (options_.semantics == MatchSemantics::kInduced && t_edge) {
        return false;
      }
      return true;
    };
    for (NodeId pu = 0; pu < pattern_.num_nodes(); ++pu) {
      NodeId tu = s_.assignment[pu];
      if (tu == kInvalidNode || pu == pv) continue;
      if (!check_direction(pu, pv, tu, tv)) return false;
      if (pattern_.directed() && !check_direction(pv, pu, tv, tu)) {
        return false;
      }
    }
    return true;
  }

  // Returns false to abort the whole search (budget exhausted / cb stop).
  bool Extend(size_t depth) {
    if (options_.max_steps > 0 && ++steps_ > options_.max_steps) return false;
    if (depth == s_.order.size()) {
      ++delivered_;
      if (!cb_(s_.assignment)) return false;
      if (options_.max_matches > 0 && delivered_ >= options_.max_matches) {
        return false;
      }
      return true;
    }
    NodeId pv = s_.order[depth];
    if (depth == 0) {
      // Root candidates come straight from the label bucket (ascending
      // node order, a subsequence of the reference's full node scan).
      const size_t need = pattern_.degree(pv);
      for (NodeId tv : s_.root_candidates) {
        if (target_.degree(tv) < need) {
          ++pruned_;
          continue;
        }
        if (!TryAssign(pv, tv, depth)) return false;
      }
    } else {
      // Restrict candidates to neighbors of an already-matched pattern
      // neighbor (always possible beyond the root).
      NodeId anchor_p = kInvalidNode;
      for (NodeId u : PatternUndirected(pv)) {
        if (s_.assignment[u] != kInvalidNode) {
          anchor_p = u;
          break;
        }
      }
      assert(anchor_p != kInvalidNode);
      NodeId anchor_t = s_.assignment[anchor_p];
      for (NodeId tv : target_.neighbors(anchor_t)) {
        if (!QuickFeasible(pv, tv)) continue;
        if (!TryAssign(pv, tv, depth)) return false;
      }
      // Directed targets store out-edges at the source; if the pattern edge
      // may be realized as an in-edge of anchor_t, scan its sources too
      // (the CSR view's prebuilt reverse adjacency instead of an all-node
      // HasEdge scan).
      if (target_.directed()) {
        for (NodeId tu : target_.in_neighbors(anchor_t)) {
          if (!QuickFeasible(pv, tu)) continue;
          if (!TryAssign(pv, tu, depth)) return false;
        }
      }
    }
    return true;
  }

  bool TryAssign(NodeId pv, NodeId tv, size_t depth) {
    if (s_.used[tv]) return true;
    if (!Consistent(pv, tv)) return true;
    s_.assignment[pv] = tv;
    s_.used[tv] = 1;
    bool keep_going = Extend(depth + 1);
    s_.assignment[pv] = kInvalidNode;
    s_.used[tv] = 0;
    return keep_going;
  }

  const Graph& pattern_;
  const CsrGraphView& target_;
  const MatchOptions& options_;
  const std::function<bool(const Match&)>& cb_;
  MatcherScratch& s_;
  bool label_infeasible_ = false;
  size_t steps_ = 0;
  size_t delivered_ = 0;
  size_t pruned_ = 0;
};

// The original unindexed search, kept verbatim (minus obs instrumentation
// and with BuildOrder's `placed` scratch hoisted into the state) as the
// reference oracle behind Vf2ReferenceMatcher.
class ReferenceVf2State {
 public:
  ReferenceVf2State(const Graph& pattern, const Graph& target,
                    const MatchOptions& options,
                    const std::function<bool(const Match&)>& cb)
      : pattern_(pattern),
        target_(target),
        options_(options),
        cb_(cb),
        assignment_(pattern.num_nodes(), kInvalidNode),
        used_(target.num_nodes(), false) {
    pattern_undirected_.resize(pattern.num_nodes());
    for (NodeId u = 0; u < pattern.num_nodes(); ++u) {
      for (const auto& nb : pattern.neighbors(u)) {
        pattern_undirected_[u].push_back(nb.node);
        if (pattern.directed()) pattern_undirected_[nb.node].push_back(u);
      }
    }
    BuildOrder();
  }

  size_t Run() {
    if (order_.empty() || pattern_.num_nodes() > target_.num_nodes()) {
      return 0;
    }
    Extend(0);
    return delivered_;
  }

 private:
  void BuildOrder() {
    const size_t np = pattern_.num_nodes();
    if (np == 0) return;
    placed_.assign(np, 0);
    NodeId root = 0;
    for (NodeId v = 1; v < np; ++v) {
      if (pattern_undirected_[v].size() > pattern_undirected_[root].size()) {
        root = v;
      }
    }
    order_.push_back(root);
    placed_[root] = 1;
    while (order_.size() < np) {
      NodeId best = kInvalidNode;
      size_t best_links = 0;
      for (NodeId v = 0; v < np; ++v) {
        if (placed_[v]) continue;
        size_t links = 0;
        for (NodeId u : pattern_undirected_[v]) {
          if (placed_[u]) ++links;
        }
        if (links > best_links ||
            (best == kInvalidNode && links > 0 && best_links == 0)) {
          best = v;
          best_links = links;
        }
      }
      if (best == kInvalidNode || best_links == 0) {
        order_.clear();
        return;
      }
      order_.push_back(best);
      placed_[best] = 1;
    }
  }

  bool Feasible(NodeId pv, NodeId tv) {
    if (pattern_.node_type(pv) != target_.node_type(tv)) return false;
    if (target_.degree(tv) < pattern_.degree(pv) &&
        options_.semantics == MatchSemantics::kSubgraph) {
      return false;
    }
    auto check_direction = [&](NodeId pa, NodeId pb, NodeId ta,
                               NodeId tb) -> bool {
      bool p_edge = pattern_.HasEdge(pa, pb);
      bool t_edge = target_.HasEdge(ta, tb);
      if (p_edge) {
        if (!t_edge) return false;
        if (pattern_.GetEdgeType(pa, pb) != target_.GetEdgeType(ta, tb)) {
          return false;
        }
      } else if (options_.semantics == MatchSemantics::kInduced && t_edge) {
        return false;
      }
      return true;
    };
    for (NodeId pu = 0; pu < pattern_.num_nodes(); ++pu) {
      NodeId tu = assignment_[pu];
      if (tu == kInvalidNode || pu == pv) continue;
      if (!check_direction(pu, pv, tu, tv)) return false;
      if (pattern_.directed() && !check_direction(pv, pu, tv, tu)) {
        return false;
      }
    }
    return true;
  }

  bool Extend(size_t depth) {
    if (options_.max_steps > 0 && ++steps_ > options_.max_steps) return false;
    if (depth == order_.size()) {
      ++delivered_;
      if (!cb_(assignment_)) return false;
      if (options_.max_matches > 0 && delivered_ >= options_.max_matches) {
        return false;
      }
      return true;
    }
    NodeId pv = order_[depth];
    if (depth == 0) {
      for (NodeId tv = 0; tv < target_.num_nodes(); ++tv) {
        if (!TryAssign(pv, tv, depth)) return false;
      }
    } else {
      NodeId anchor_p = kInvalidNode;
      for (NodeId u : pattern_undirected_[pv]) {
        if (assignment_[u] != kInvalidNode) {
          anchor_p = u;
          break;
        }
      }
      assert(anchor_p != kInvalidNode);
      NodeId anchor_t = assignment_[anchor_p];
      for (const auto& nb : target_.neighbors(anchor_t)) {
        if (!TryAssign(pv, nb.node, depth)) return false;
      }
      if (target_.directed()) {
        for (NodeId tu = 0; tu < target_.num_nodes(); ++tu) {
          if (target_.HasEdge(tu, anchor_t)) {
            if (!TryAssign(pv, tu, depth)) return false;
          }
        }
      }
    }
    return true;
  }

  bool TryAssign(NodeId pv, NodeId tv, size_t depth) {
    if (used_[tv]) return true;
    if (!Feasible(pv, tv)) return true;
    assignment_[pv] = tv;
    used_[tv] = true;
    bool keep_going = Extend(depth + 1);
    assignment_[pv] = kInvalidNode;
    used_[tv] = false;
    return keep_going;
  }

  const Graph& pattern_;
  const Graph& target_;
  const MatchOptions& options_;
  const std::function<bool(const Match&)>& cb_;
  std::vector<std::vector<NodeId>> pattern_undirected_;
  std::vector<NodeId> order_;
  Match assignment_;
  std::vector<bool> used_;
  std::vector<uint8_t> placed_;
  size_t steps_ = 0;
  size_t delivered_ = 0;
};

}  // namespace

size_t Vf2Matcher::EnumerateMatches(
    const Graph& pattern, const CsrGraphView& target,
    const MatchOptions& options, const std::function<bool(const Match&)>& cb) {
  if (pattern.num_nodes() == 0) return 0;
  MatcherScratch::Lease scratch;
  Vf2State state(pattern, target, options, cb, *scratch);
  return state.Run();
}

size_t Vf2Matcher::EnumerateMatches(
    const Graph& pattern, const Graph& target, const MatchOptions& options,
    const std::function<bool(const Match&)>& cb) {
  if (pattern.num_nodes() == 0) return 0;
  // One arena-backed CSR view per run, reclaimed on exit. With the arena
  // switch off the view falls back to heap storage (the A/B probe's
  // "heap" side).
  Arena& arena = arena::ThreadLocal();
  ScopedArenaMark mark(&arena);
  CsrGraphView view(target, &arena);
  return EnumerateMatches(pattern, view, options, cb);
}

std::vector<Match> Vf2Matcher::FindMatches(const Graph& pattern,
                                           const Graph& target,
                                           const MatchOptions& options) {
  std::vector<Match> matches;
  EnumerateMatches(pattern, target, options, [&](const Match& m) {
    matches.push_back(m);
    return true;
  });
  return matches;
}

std::vector<Match> Vf2Matcher::FindMatches(const Graph& pattern,
                                           const CsrGraphView& target,
                                           const MatchOptions& options) {
  std::vector<Match> matches;
  EnumerateMatches(pattern, target, options, [&](const Match& m) {
    matches.push_back(m);
    return true;
  });
  return matches;
}

bool Vf2Matcher::HasMatch(const Graph& pattern, const Graph& target,
                          const MatchOptions& options) {
  MatchOptions first_only = options;
  first_only.max_matches = 1;
  return EnumerateMatches(pattern, target, first_only,
                          [](const Match&) { return false; }) > 0;
}

bool Vf2Matcher::HasMatch(const Graph& pattern, const CsrGraphView& target,
                          const MatchOptions& options) {
  MatchOptions first_only = options;
  first_only.max_matches = 1;
  return EnumerateMatches(pattern, target, first_only,
                          [](const Match&) { return false; }) > 0;
}

size_t Vf2ReferenceMatcher::EnumerateMatches(
    const Graph& pattern, const Graph& target, const MatchOptions& options,
    const std::function<bool(const Match&)>& cb) {
  if (pattern.num_nodes() == 0) return 0;
  ReferenceVf2State state(pattern, target, options, cb);
  return state.Run();
}

std::vector<Match> Vf2ReferenceMatcher::FindMatches(
    const Graph& pattern, const Graph& target, const MatchOptions& options) {
  std::vector<Match> matches;
  EnumerateMatches(pattern, target, options, [&](const Match& m) {
    matches.push_back(m);
    return true;
  });
  return matches;
}

bool Vf2ReferenceMatcher::HasMatch(const Graph& pattern, const Graph& target,
                                   const MatchOptions& options) {
  MatchOptions first_only = options;
  first_only.max_matches = 1;
  return EnumerateMatches(pattern, target, first_only,
                          [](const Match&) { return false; }) > 0;
}

std::vector<std::pair<NodeId, NodeId>> EdgeList(const Graph& g) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(g.num_edges());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const auto& nb : g.neighbors(u)) {
      if (!g.directed() && nb.node < u) continue;
      edges.emplace_back(u, nb.node);
    }
  }
  return edges;
}

std::vector<std::pair<NodeId, NodeId>> EdgeList(const CsrGraphView& g) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(g.num_edges());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.neighbors(u)) {
      if (!g.directed() && v < u) continue;
      edges.emplace_back(u, v);
    }
  }
  return edges;
}

CoverageResult ComputeCoverage(const std::vector<Graph>& patterns,
                               const Graph& target,
                               const MatchOptions& options) {
  // One CSR view serves every pattern's enumeration.
  Arena& arena = arena::ThreadLocal();
  ScopedArenaMark mark(&arena);
  CsrGraphView view(target, &arena);
  return ComputeCoverage(patterns, view, options);
}

CoverageResult ComputeCoverage(const std::vector<Graph>& patterns,
                               const CsrGraphView& target,
                               const MatchOptions& options) {
  CoverageResult result;
  result.covered_nodes = DynamicBitset(target.num_nodes());
  auto edges = EdgeList(target);
  result.covered_edges = DynamicBitset(edges.size());

  // EdgeList is grouped by ascending source, so a prefix array over the
  // sources replaces the old hash map: edge_start[u] .. edge_start[u+1]
  // brackets u's edges, and the within-bracket scan is bounded by the
  // degree. Arena-backed — reclaimed with the run.
  Arena& arena = arena::ThreadLocal();
  ScopedArenaMark mark(&arena);
  const size_t n = target.num_nodes();
  ArenaVector<uint32_t> edge_start(n + 1, 0,
                                   ArenaAllocator<uint32_t>(&arena));
  for (const auto& [u, v] : edges) ++edge_start[u + 1];
  for (size_t u = 0; u < n; ++u) edge_start[u + 1] += edge_start[u];
  auto edge_id = [&](NodeId u, NodeId v) -> size_t {
    if (!target.directed() && u > v) std::swap(u, v);
    for (uint32_t i = edge_start[u]; i < edge_start[u + 1]; ++i) {
      if (edges[i].second == v) return i;
    }
    return static_cast<size_t>(-1);
  };

  for (const Graph& p : patterns) {
    auto p_edges = EdgeList(p);
    Vf2Matcher::EnumerateMatches(p, target, options, [&](const Match& m) {
      ++result.num_matches;
      for (NodeId tv : m) result.covered_nodes.Set(tv);
      for (auto [pu, pv] : p_edges) {
        size_t idx = edge_id(m[pu], m[pv]);
        if (idx != static_cast<size_t>(-1)) result.covered_edges.Set(idx);
      }
      // Early exit if everything is already covered.
      return result.covered_nodes.Count() < target.num_nodes() ||
             result.covered_edges.Count() < edges.size();
    });
    if (result.covered_nodes.Count() == target.num_nodes() &&
        result.covered_edges.Count() == edges.size()) {
      break;
    }
  }
  return result;
}

}  // namespace gvex
