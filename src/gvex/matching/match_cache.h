// MatchCache — process-wide memoization of PMatch results.
//
// ApproxGVEX, StreamGVEX, Psum, and the query layer repeatedly ask the
// same (pattern, target) questions: has-match during query/screening,
// capped match counts, and single-pattern coverage inside the
// explain-and-summarize loop. The searches are NP-hard in the worst case
// and identical inputs recur constantly (every Psum candidate against
// every subgraph, every stream repair round against the same patterns),
// so results are cached behind a sharded, thread-safe map.
//
// Keying (full rules in docs/PERFORMANCE.md):
//   * pattern — canonical code (mining/canonical) for undirected patterns
//     of <= 10 nodes, so isomorphic patterns share entries; exact content
//     fingerprint otherwise (the canonical encoding is direction-lossy,
//     and large patterns would pay factorial canonicalization).
//   * target  — 128-bit content fingerprint (order-sensitive hash over
//     nodes, types, adjacency, edge types, directedness).
//   * the match semantics, the result kind, and — for counts — the
//     max_matches cap (a capped count is min(cap, total), which is
//     enumeration-order invariant and therefore cacheable).
//
// Step-budgeted searches (options.max_steps > 0) bypass the cache: a
// truncated search is not a cacheable fact.
//
// Invalidation: fingerprints are content hashes, so a mutated graph
// simply stops hitting its old entries — correctness never depends on
// invalidation. InvalidateTarget exists to drop a retired (or mutated)
// graph's stale entries eagerly; StreamGVEX calls it when it abandons a
// half-finished label run, whose partial subgraphs can never be queried
// again. Entries for targets that retire without such a call (e.g.
// dropped explanation views) linger until their shard hits its entry
// cap and is dumped wholesale — memory bounding otherwise relies solely
// on that epoch-style eviction. Clear() resets everything.
// Hits/misses/bypasses/evictions are exported through the obs registry
// ("match_cache.*" counters).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "gvex/graph/graph.h"
#include "gvex/matching/vf2.h"

namespace gvex {

/// 128-bit order-sensitive content fingerprint of a graph. Equal graphs
/// always agree; unequal graphs disagree up to hash collision.
struct GraphFingerprint {
  uint64_t lo = 0;
  uint64_t hi = 0;
  bool operator==(const GraphFingerprint&) const = default;
};

GraphFingerprint FingerprintGraph(const Graph& g);

class MatchCache {
 public:
  /// Process-wide instance used by the explain/query hot paths.
  static MatchCache& Global();

  /// Cached Vf2Matcher::HasMatch.
  bool HasMatch(const Graph& pattern, const Graph& target,
                const MatchOptions& options);

  /// Cached match count, capped at options.max_matches (0 = exhaustive;
  /// the cap is part of the key).
  size_t CountMatches(const Graph& pattern, const Graph& target,
                      const MatchOptions& options);

  /// Cached single-pattern ComputeCoverage. Falls back to the uncached
  /// computation when options carry a step budget or a match cap.
  CoverageResult Coverage(const Graph& pattern, const Graph& target,
                          const MatchOptions& options);

  /// Drop every entry whose target is this graph (by current content).
  void InvalidateTarget(const Graph& target);
  void InvalidateTarget(const GraphFingerprint& fp);

  void Clear();

  /// Total number of resident entries (sums shards; approximate under
  /// concurrent mutation).
  size_t size() const;

 private:
  struct Key {
    std::string pattern_key;
    GraphFingerprint target;
    uint8_t semantics = 0;
    uint8_t kind = 0;  // 0 = has-match, 1 = count, 2 = coverage
    uint64_t cap = 0;  // count cap (kind 1 only)

    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const;
  };
  struct Value {
    uint64_t scalar = 0;                // has-match / count / num_matches
    std::vector<uint32_t> nodes, edges;  // coverage kinds only
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<Key, Value, KeyHash> entries;
  };

  static constexpr size_t kNumShards = 16;
  /// Per-shard entry cap; a full shard is dumped wholesale (epoch-style)
  /// rather than tracking LRU order on the hot path.
  static constexpr size_t kMaxEntriesPerShard = 1 << 15;

  Shard& ShardFor(const Key& k);
  bool Lookup(const Key& k, Value* out);
  void Store(const Key& k, Value v);
  std::string PatternKey(const Graph& pattern) const;

  Shard shards_[kNumShards];
};

}  // namespace gvex
