#include "gvex/matching/match_cache.h"

#include <utility>

#include "gvex/common/string_util.h"
#include "gvex/mining/canonical.h"
#include "gvex/obs/obs.h"

namespace gvex {
namespace {

// Patterns above this size pay factorial canonicalization; key them by
// content fingerprint instead (correct, just no isomorphism sharing).
constexpr size_t kMaxCanonicalPatternNodes = 10;

// Two independent FNV-1a streams with distinct offsets/avalanche give the
// 128-bit fingerprint; each token is avalanche-mixed (splitmix64 finisher)
// so permuted token streams don't cancel.
struct Mixer {
  uint64_t state;
  explicit Mixer(uint64_t seed) : state(seed) {}
  void Feed(uint64_t token) {
    uint64_t z = token + 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    z ^= z >> 31;
    state = (state ^ z) * 1099511628211ULL;
  }
};

bool CacheableOptions(const MatchOptions& options) {
  return options.max_steps == 0;
}

}  // namespace

GraphFingerprint FingerprintGraph(const Graph& g) {
  Mixer lo(14695981039346656037ULL);
  Mixer hi(0x2545F4914F6CDD1DULL);
  auto feed = [&](uint64_t token) {
    lo.Feed(token);
    hi.Feed(token ^ 0xA5A5A5A5A5A5A5A5ULL);
  };
  feed(g.directed() ? 1 : 2);
  feed(g.num_nodes());
  feed(g.num_edges());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    feed(static_cast<uint64_t>(static_cast<uint32_t>(g.node_type(v))));
    for (const auto& nb : g.neighbors(v)) {
      feed((static_cast<uint64_t>(v) << 32) | nb.node);
      feed(static_cast<uint64_t>(static_cast<uint32_t>(nb.edge_type)) + 3);
    }
  }
  return {lo.state, hi.state};
}

MatchCache& MatchCache::Global() {
  // Leaky singleton, same rationale as the obs registry: explain paths may
  // run during static teardown.
  static MatchCache* cache = new MatchCache();
  return *cache;
}

size_t MatchCache::KeyHash::operator()(const Key& k) const {
  size_t h = std::hash<std::string>()(k.pattern_key);
  h ^= k.target.lo + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  h ^= k.target.hi + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  h ^= (static_cast<size_t>(k.semantics) << 1) ^ (static_cast<size_t>(k.kind) << 9);
  h ^= static_cast<size_t>(k.cap) + 0x85EBCA77C2B2AE63ULL + (h << 6) + (h >> 2);
  return h;
}

MatchCache::Shard& MatchCache::ShardFor(const Key& k) {
  return shards_[KeyHash()(k) % kNumShards];
}

bool MatchCache::Lookup(const Key& k, Value* out) {
  Shard& shard = ShardFor(k);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(k);
  if (it == shard.entries.end()) {
    GVEX_COUNTER_INC("match_cache.misses");
    return false;
  }
  *out = it->second;
  GVEX_COUNTER_INC("match_cache.hits");
  return true;
}

void MatchCache::Store(const Key& k, Value v) {
  Shard& shard = ShardFor(k);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.entries.size() >= kMaxEntriesPerShard) {
    shard.entries.clear();
    GVEX_COUNTER_INC("match_cache.evictions");
  }
  shard.entries.emplace(k, std::move(v));
}

std::string MatchCache::PatternKey(const Graph& pattern) const {
  if (!pattern.directed() &&
      pattern.num_nodes() <= kMaxCanonicalPatternNodes) {
    return CanonicalCode(pattern);
  }
  GraphFingerprint fp = FingerprintGraph(pattern);
  return StrFormat("fp:%llu:%llu", static_cast<unsigned long long>(fp.lo),
                   static_cast<unsigned long long>(fp.hi));
}

bool MatchCache::HasMatch(const Graph& pattern, const Graph& target,
                          const MatchOptions& options) {
  if (!CacheableOptions(options)) {
    GVEX_COUNTER_INC("match_cache.bypasses");
    return Vf2Matcher::HasMatch(pattern, target, options);
  }
  Key key{PatternKey(pattern), FingerprintGraph(target),
          static_cast<uint8_t>(options.semantics), /*kind=*/0, /*cap=*/0};
  Value v;
  if (Lookup(key, &v)) return v.scalar != 0;
  const bool result = Vf2Matcher::HasMatch(pattern, target, options);
  v.scalar = result ? 1 : 0;
  Store(key, std::move(v));
  return result;
}

size_t MatchCache::CountMatches(const Graph& pattern, const Graph& target,
                                const MatchOptions& options) {
  if (!CacheableOptions(options)) {
    GVEX_COUNTER_INC("match_cache.bypasses");
    return Vf2Matcher::EnumerateMatches(pattern, target, options,
                                        [](const Match&) { return true; });
  }
  Key key{PatternKey(pattern), FingerprintGraph(target),
          static_cast<uint8_t>(options.semantics), /*kind=*/1,
          options.max_matches};
  Value v;
  if (Lookup(key, &v)) return static_cast<size_t>(v.scalar);
  const size_t count = Vf2Matcher::EnumerateMatches(
      pattern, target, options, [](const Match&) { return true; });
  v.scalar = count;
  Store(key, std::move(v));
  return count;
}

CoverageResult MatchCache::Coverage(const Graph& pattern, const Graph& target,
                                    const MatchOptions& options) {
  // Coverage is cached only for exhaustive enumerations, and keyed by the
  // pattern's exact content: the early-exit num_matches is not invariant
  // under pattern relabeling, so canonical sharing would be unsound.
  if (!CacheableOptions(options) || options.max_matches != 0) {
    GVEX_COUNTER_INC("match_cache.bypasses");
    return ComputeCoverage({pattern}, target, options);
  }
  GraphFingerprint pattern_fp = FingerprintGraph(pattern);
  Key key{StrFormat("fp:%llu:%llu",
                    static_cast<unsigned long long>(pattern_fp.lo),
                    static_cast<unsigned long long>(pattern_fp.hi)),
          FingerprintGraph(target), static_cast<uint8_t>(options.semantics),
          /*kind=*/2, /*cap=*/0};
  Value v;
  if (Lookup(key, &v)) {
    CoverageResult result;
    result.covered_nodes = DynamicBitset(target.num_nodes());
    result.covered_edges = DynamicBitset(target.num_edges());
    for (uint32_t idx : v.nodes) result.covered_nodes.Set(idx);
    for (uint32_t idx : v.edges) result.covered_edges.Set(idx);
    result.num_matches = static_cast<size_t>(v.scalar);
    return result;
  }
  CoverageResult result = ComputeCoverage({pattern}, target, options);
  v.scalar = result.num_matches;
  for (size_t idx : result.covered_nodes.ToVector()) {
    v.nodes.push_back(static_cast<uint32_t>(idx));
  }
  for (size_t idx : result.covered_edges.ToVector()) {
    v.edges.push_back(static_cast<uint32_t>(idx));
  }
  Store(key, std::move(v));
  return result;
}

void MatchCache::InvalidateTarget(const Graph& target) {
  InvalidateTarget(FingerprintGraph(target));
}

void MatchCache::InvalidateTarget(const GraphFingerprint& fp) {
  size_t dropped = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.entries.begin(); it != shard.entries.end();) {
      if (it->first.target == fp) {
        it = shard.entries.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
  }
  GVEX_COUNTER_ADD("match_cache.invalidated", dropped);
}

void MatchCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.entries.clear();
  }
}

size_t MatchCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.entries.size();
  }
  return total;
}

}  // namespace gvex
