// Subgraph isomorphism (the PMatch primitive of §4).
//
// Patterns are matched into target graphs by a VF2-style backtracking
// search with type compatibility and adjacency-consistency pruning.
// Two semantics are supported:
//  * kSubgraph — ordinary subgraph isomorphism: every pattern edge must map
//    to a target edge (the containment direction of the paper's matching
//    definition in §2.1);
//  * kInduced  — node-induced isomorphism: additionally, pattern non-edges
//    must map to target non-edges (the semantics named by the paper, used
//    for view verification C1).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "gvex/common/bitset.h"
#include "gvex/common/stopwatch.h"
#include "gvex/graph/csr_view.h"
#include "gvex/graph/graph.h"

namespace gvex {

enum class MatchSemantics {
  kSubgraph,
  kInduced,
};

struct MatchOptions {
  MatchSemantics semantics = MatchSemantics::kInduced;
  /// Stop after this many matches (0 = unlimited).
  size_t max_matches = 0;
  /// Give up (returning what was found) after this many backtracking steps
  /// (0 = unlimited). Guards the NP-hard worst case in streaming paths.
  size_t max_steps = 0;
};

/// One match: match[i] is the target node assigned to pattern node i.
using Match = std::vector<NodeId>;

/// \brief Backtracking matcher for connected patterns.
///
/// This is the indexed fast path: one pass over the target builds the
/// root's label→nodes bucket plus a label histogram, rejects in
/// O(target) when the pattern's label multiset is not subsumed by the
/// target's, restricts root candidates to the root's label bucket, and
/// prefilters every anchored candidate by label and degree before the
/// adjacency-consistency check (degree(t) >= degree(p) is sound under
/// both semantics: every pattern edge must map to a distinct target
/// edge).
/// Directed targets additionally get a reverse-adjacency index so
/// in-edge anchors don't scan all nodes.
///
/// Equivalence contract: for unbudgeted runs (max_steps == 0) the
/// delivered match sequence is byte-identical to Vf2ReferenceMatcher —
/// every pruned candidate's subtree contains no match, and surviving
/// candidates are visited in the reference's order — which the property
/// tests pin down byte-for-byte. Under a step budget (max_steps > 0)
/// the two matchers count different step totals: the reference burns
/// steps on subtrees the index prunes up front (notably degree-deficient
/// candidates under kInduced, which its Feasible only degree-prunes
/// under kSubgraph), so it exhausts the budget earlier. Because the
/// indexed search tree is a pruned subtree of the reference's with the
/// same DFS order, the reference's budgeted match list is always a
/// prefix of the indexed matcher's budgeted list, which in turn is a
/// prefix of the full unbudgeted sequence (tested in
/// match_equivalence_test.cc). Budgeted searches also bypass the
/// MatchCache, so a truncated result is never memoized.
class Vf2Matcher {
 public:
  /// All (or up to options.max_matches) matches of `pattern` in `target`.
  /// The pattern must be connected; disconnected patterns yield no matches.
  static std::vector<Match> FindMatches(const Graph& pattern,
                                        const Graph& target,
                                        const MatchOptions& options = {});

  /// True iff at least one match exists.
  static bool HasMatch(const Graph& pattern, const Graph& target,
                       const MatchOptions& options = {});

  /// Enumerate matches through a callback; return false from the callback
  /// to stop. Returns the number of matches delivered.
  static size_t EnumerateMatches(const Graph& pattern, const Graph& target,
                                 const MatchOptions& options,
                                 const std::function<bool(const Match&)>& cb);

  // The matcher traverses the compact CSR/SoA layout (csr_view.h); the
  // Graph-target overloads above build an arena-backed view per run.
  // Callers matching many patterns into one target (coverage, warm-up)
  // build the view once and pass it here. The delivered match sequence
  // is identical either way.
  static std::vector<Match> FindMatches(const Graph& pattern,
                                        const CsrGraphView& target,
                                        const MatchOptions& options = {});
  static bool HasMatch(const Graph& pattern, const CsrGraphView& target,
                       const MatchOptions& options = {});
  static size_t EnumerateMatches(const Graph& pattern,
                                 const CsrGraphView& target,
                                 const MatchOptions& options,
                                 const std::function<bool(const Match&)>& cb);
};

/// \brief The pre-index reference matcher, kept verbatim as the
/// correctness oracle: equivalence property tests assert byte-identical
/// match lists against Vf2Matcher, and bench_micro_kernels reports the
/// indexed-vs-reference speedup. Not instrumented (no obs counters), so
/// A/B timing probes measure pure matching work.
class Vf2ReferenceMatcher {
 public:
  static std::vector<Match> FindMatches(const Graph& pattern,
                                        const Graph& target,
                                        const MatchOptions& options = {});

  static bool HasMatch(const Graph& pattern, const Graph& target,
                       const MatchOptions& options = {});

  static size_t EnumerateMatches(const Graph& pattern, const Graph& target,
                                 const MatchOptions& options,
                                 const std::function<bool(const Match&)>& cb);
};

/// \brief Node/edge coverage of a target graph by a set of patterns
/// (the PMatch operator checking constraints C1/C3).
struct CoverageResult {
  DynamicBitset covered_nodes;            // over target nodes
  DynamicBitset covered_edges;            // over EdgeList(target) indices
  size_t num_matches = 0;
};

/// Canonical edge list of a graph: pairs (u, v) with u < v for undirected
/// graphs, (u, v) as stored for directed. Index order is deterministic,
/// and identical between a Graph and any CsrGraphView of it.
std::vector<std::pair<NodeId, NodeId>> EdgeList(const Graph& g);
std::vector<std::pair<NodeId, NodeId>> EdgeList(const CsrGraphView& g);

/// Coverage of `target` by every pattern in `patterns`. The Graph
/// overload builds one arena-backed CSR view and reuses it across all
/// patterns; pass a prebuilt view to amortize it further.
CoverageResult ComputeCoverage(const std::vector<Graph>& patterns,
                               const Graph& target,
                               const MatchOptions& options = {});
CoverageResult ComputeCoverage(const std::vector<Graph>& patterns,
                               const CsrGraphView& target,
                               const MatchOptions& options = {});

}  // namespace gvex
