#include "gvex/explain/checkpoint.h"

#include <fstream>
#include <sstream>

#include "gvex/common/failpoint.h"
#include "gvex/common/io_util.h"
#include "gvex/common/logging.h"
#include "gvex/explain/view_io.h"
#include "gvex/obs/obs.h"

namespace gvex {

namespace {
constexpr const char* kMagic = "gvexckpt-v2";
}  // namespace

Result<std::unique_ptr<ExplanationCheckpoint>> ExplanationCheckpoint::Open(
    const std::string& path, bool resume, size_t cadence) {
  std::unique_ptr<ExplanationCheckpoint> ckpt(new ExplanationCheckpoint);
  ckpt->path_ = path;
  ckpt->cadence_ = cadence == 0 ? 1 : cadence;

  bool have_valid_file = false;
  if (resume) {
    std::ifstream in(path);
    if (in.is_open()) {
      std::string magic;
      if ((in >> magic) && magic == kMagic) {
        have_valid_file = true;
        for (;;) {
          Result<std::string> payload = ReadSection(&in);
          if (!payload.ok()) {
            // EOF is the normal end; anything else is a torn tail from a
            // crash mid-append — keep the valid prefix, drop the rest.
            if (!in.eof()) {
              GVEX_LOG(Warning)
                  << "checkpoint " << path << ": discarding corrupt tail ("
                  << payload.status().ToString() << ") after "
                  << ckpt->records_.size() << " records";
            }
            break;
          }
          std::istringstream rec(*payload);
          std::string tag;
          ClassLabel label;
          if (!(rec >> tag >> label) || tag != "rec") {
            GVEX_LOG(Warning) << "checkpoint " << path
                              << ": malformed record, stopping replay";
            break;
          }
          Result<ExplanationSubgraph> sub = ReadExplanationSubgraph(&rec);
          if (!sub.ok()) {
            GVEX_LOG(Warning) << "checkpoint " << path
                              << ": unreadable record, stopping replay";
            break;
          }
          size_t gi = sub->graph_index;
          ckpt->records_[{label, gi}] = std::move(*sub);
        }
        ckpt->loaded_count_ = ckpt->records_.size();
      } else {
        return Status::IoError("checkpoint " + path + " has a bad magic");
      }
    }
  }

  auto mode = have_valid_file ? (std::ios::out | std::ios::app)
                              : (std::ios::out | std::ios::trunc);
  ckpt->out_ = std::make_unique<std::ofstream>(path, mode);
  if (!ckpt->out_->is_open()) {
    return Status::IoError("cannot open checkpoint " + path);
  }
  SetMaxPrecision(ckpt->out_.get());
  if (!have_valid_file) {
    (*ckpt->out_) << kMagic << "\n";
    ckpt->out_->flush();
    if (!ckpt->out_->good()) {
      return Status::IoError("cannot initialize checkpoint " + path);
    }
  }
  return ckpt;
}

const ExplanationSubgraph* ExplanationCheckpoint::Find(
    ClassLabel label, size_t graph_index) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = records_.find({label, graph_index});
  return it == records_.end() ? nullptr : &it->second;
}

Status ExplanationCheckpoint::Append(ClassLabel label,
                                     const ExplanationSubgraph& sub) {
  // Fires *before* any bytes reach the file: a simulated crash leaves the
  // journal valid, exactly like a real kill between records.
  GVEX_FAILPOINT_RETURN("checkpoint.append");
  GVEX_COUNTER_INC("checkpoint.appends");
  GVEX_LATENCY_US("checkpoint.append_us");
  std::ostringstream rec;
  SetMaxPrecision(&rec);
  rec << "rec " << label << "\n";
  GVEX_RETURN_NOT_OK(WriteExplanationSubgraph(sub, &rec));

  std::lock_guard<std::mutex> lock(mu_);
  GVEX_RETURN_NOT_OK(WriteSection(out_.get(), rec.str()));
  if (++unflushed_ >= cadence_) {
    out_->flush();
    unflushed_ = 0;
  }
  if (!out_->good()) {
    return Status::IoError("checkpoint append to " + path_ + " failed");
  }
  records_[{label, sub.graph_index}] = sub;
  return Status::OK();
}

Status ExplanationCheckpoint::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  out_->flush();
  unflushed_ = 0;
  if (!out_->good()) {
    return Status::IoError("checkpoint flush to " + path_ + " failed");
  }
  return Status::OK();
}

}  // namespace gvex
