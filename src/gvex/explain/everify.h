// EVerify: the GNN-inference verifier of §4 checking constraint C2 — an
// explanation subgraph must be *consistent* (M(G_s) = l) and
// *counterfactual* (M(G \ G_s) != l).
#pragma once

#include <vector>

#include "gvex/gnn/model.h"
#include "gvex/graph/graph.h"

namespace gvex {

/// \brief Result of one C2 verification, with the class probabilities that
/// the greedy candidate ranking uses as progress signals.
struct EVerifyResult {
  bool consistent = false;       ///< M(G_s) == l
  bool counterfactual = false;   ///< M(G \ G_s) != l
  float prob_subgraph = 0.0f;    ///< P(M(G_s) = l)
  float prob_remainder = 0.0f;   ///< P(M(G \ G_s) = l)

  bool IsExplanation() const { return consistent && counterfactual; }
};

/// \brief Stateless verifier bound to a fixed model M.
class EVerify {
 public:
  explicit EVerify(const GcnClassifier* model) : model_(model) {}

  /// Verify the node set `nodes` of `g` as an explanation for label `l`.
  /// An empty node set is never an explanation; removing all of `g` makes
  /// the remainder unclassifiable (kNoLabel), which satisfies the
  /// counterfactual clause per the footnote-1 semantics.
  EVerifyResult Verify(const Graph& g, const std::vector<NodeId>& nodes,
                       ClassLabel l) const;

  const GcnClassifier& model() const { return *model_; }

 private:
  const GcnClassifier* model_;
};

}  // namespace gvex
