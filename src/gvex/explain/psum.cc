#include "gvex/explain/psum.h"

#include <algorithm>
#include <cassert>

#include "gvex/common/bitset.h"
#include "gvex/common/thread_pool.h"
#include "gvex/matching/match_cache.h"
#include "gvex/matching/vf2.h"
#include "gvex/obs/obs.h"

namespace gvex {
namespace {

// Global node/edge coverage of one candidate pattern across all subgraphs,
// flattened into shared index spaces.
struct CandidateCoverage {
  DynamicBitset nodes;
  DynamicBitset edges;
  double weight = 1.0;  // w(P) = 1 - |P_Es| / |Es|
};

}  // namespace

PsumResult Psum(const std::vector<Graph>& subgraphs,
                const Configuration& config) {
  PsumResult result;
  if (subgraphs.empty()) {
    result.full_node_coverage = true;
    return result;
  }
  GVEX_SPAN("psum.summarize");
  GVEX_COUNTER_INC("psum.calls");

  // Flatten node and edge index spaces across subgraphs.
  size_t total_nodes = 0;
  size_t total_edges = 0;
  std::vector<size_t> node_base(subgraphs.size());
  std::vector<size_t> edge_base(subgraphs.size());
  for (size_t i = 0; i < subgraphs.size(); ++i) {
    node_base[i] = total_nodes;
    edge_base[i] = total_edges;
    total_nodes += subgraphs[i].num_nodes();
    total_edges += subgraphs[i].num_edges();
  }

  // Mine candidates and compute their global coverage. Structural
  // patterns only (>= 2 nodes): single-type singletons trivially dominate
  // node-coverage-per-weight yet explain nothing; they re-enter solely as
  // the mop-up fallback below.
  PgenOptions pgen = config.pgen;
  pgen.min_pattern_nodes = std::max<size_t>(pgen.min_pattern_nodes, 2);
  std::vector<PatternCandidate> candidates =
      GeneratePatternCandidates(subgraphs, pgen);
  // The candidate×subgraph coverage matrix is the Psum hot loop: each cell
  // is a full VF2 enumeration. Cells hit the MatchCache (the same pairs
  // recur across labels and stream repair rounds) and candidates fan out
  // over the shared pool — each iteration writes only coverage[ci], and
  // the greedy selection below stays serial and deterministic.
  std::vector<CandidateCoverage> coverage(candidates.size());
  ThreadPool::Shared().ParallelFor(candidates.size(), [&](size_t ci) {
    CandidateCoverage& cov = coverage[ci];
    cov.nodes = DynamicBitset(total_nodes);
    cov.edges = DynamicBitset(total_edges);
    for (size_t gi = 0; gi < subgraphs.size(); ++gi) {
      CoverageResult local = MatchCache::Global().Coverage(
          candidates[ci].pattern, subgraphs[gi], config.match);
      for (size_t v : local.covered_nodes.ToVector()) {
        cov.nodes.Set(node_base[gi] + v);
      }
      for (size_t e : local.covered_edges.ToVector()) {
        cov.edges.Set(edge_base[gi] + e);
      }
    }
    cov.weight = total_edges == 0
                     ? 0.0
                     : 1.0 - static_cast<double>(cov.edges.Count()) /
                                 static_cast<double>(total_edges);
  });

  // Greedy weighted set cover: maximize newly covered nodes per unit
  // weight until all nodes are covered or candidates are exhausted.
  DynamicBitset covered_nodes(total_nodes);
  DynamicBitset covered_edges(total_edges);
  std::vector<bool> selected(candidates.size(), false);
  constexpr double kWeightFloor = 1e-2;  // avoids division by ~0 weights
  while (covered_nodes.Count() < total_nodes) {
    size_t best = static_cast<size_t>(-1);
    double best_ratio = 0.0;
    for (size_t ci = 0; ci < candidates.size(); ++ci) {
      if (selected[ci]) continue;
      size_t gain = covered_nodes.MarginalCount(coverage[ci].nodes);
      if (gain == 0) continue;
      // Weighted-set-cover greedy on nodes; newly covered edges join the
      // numerator so that at equal node gain the pattern missing fewer
      // edges wins (the w(P) objective of Lemma 4.3).
      size_t edge_gain = covered_edges.MarginalCount(coverage[ci].edges);
      double ratio = static_cast<double>(gain + edge_gain) /
                     (coverage[ci].weight + kWeightFloor);
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best = ci;
      }
    }
    if (best == static_cast<size_t>(-1)) break;  // nothing useful left
    selected[best] = true;
    covered_nodes.UnionWith(coverage[best].nodes);
    covered_edges.UnionWith(coverage[best].edges);
    result.patterns.push_back(candidates[best].pattern);
  }

  // Mop-up: any node the mined candidates missed (possible when PGen
  // truncates) gets its singleton type pattern, preserving the view
  // invariant that P^l covers all of G_s^l.
  if (covered_nodes.Count() < total_nodes) {
    std::vector<NodeType> singleton_types;
    for (size_t gi = 0; gi < subgraphs.size(); ++gi) {
      for (NodeId v = 0; v < subgraphs[gi].num_nodes(); ++v) {
        if (covered_nodes.Test(node_base[gi] + v)) continue;
        NodeType t = subgraphs[gi].node_type(v);
        if (std::find(singleton_types.begin(), singleton_types.end(), t) ==
            singleton_types.end()) {
          singleton_types.push_back(t);
          Graph p;
          p.AddNode(t);
          result.patterns.push_back(std::move(p));
        }
        covered_nodes.Set(node_base[gi] + v);
      }
    }
  }

  result.full_node_coverage = covered_nodes.Count() == total_nodes;
  result.edge_loss =
      total_edges == 0
          ? 0.0
          : 1.0 - static_cast<double>(covered_edges.Count()) /
                      static_cast<double>(total_edges);
  return result;
}

}  // namespace gvex
