#include "gvex/explain/approx_gvex.h"

#include <algorithm>
#include <cassert>

#include "gvex/common/failpoint.h"
#include "gvex/common/logging.h"
#include "gvex/common/string_util.h"
#include "gvex/explain/psum.h"
#include "gvex/influence/influence.h"
#include "gvex/obs/obs.h"

namespace gvex {
namespace {

struct Candidate {
  NodeId node;
  double gain;  // marginal explainability gain
};

}  // namespace

Result<ExplanationSubgraph> ApproxGvex::ExplainGraph(const Graph& g,
                                                     size_t graph_index,
                                                     ClassLabel l) {
  ++stats_.graphs_attempted;
  GVEX_FAILPOINT_RETURN("approx.explain_graph");
  if (g.num_nodes() == 0) {
    return Status::InvalidArgument("cannot explain an empty graph");
  }
  GVEX_SPAN("approx.explain_graph");
  GVEX_COUNTER_INC("approx.graphs");
  CoverageConstraint cc = config_.ConstraintFor(l);
  if (cc.lower > cc.upper || cc.upper == 0) {
    return Status::InvalidArgument("invalid coverage constraint");
  }
  // Selecting every node would make the counterfactual test vacuous
  // (empty remainder); always leave at least one node behind.
  cc.upper = std::min(cc.upper, g.num_nodes() - 1);
  cc.lower = std::min(cc.lower, cc.upper);
  if (cc.upper == 0) {
    ++stats_.graphs_infeasible;
    return Status::Infeasible("single-node graph has no proper subgraph");
  }

  GVEX_ASSIGN_OR_RETURN(
      InfluenceAnalyzer analyzer,
      InfluenceAnalyzer::Build(*model_, g, config_.MakeInfluenceOptions()));
  InfluenceAccumulator acc(&analyzer);
  const float gamma = config_.gamma;
  const double inv_graph_size = 1.0 / static_cast<double>(g.num_nodes());

  // Gradient saliency per node: a second candidate-screening signal. The
  // paper's VpExtend EVerifies every candidate; our top-K screen must not
  // miss label-critical nodes whose *influence* gain happens to be small
  // (common when the class evidence sits on low-degree nodes), so the
  // probe set is the union of the top-K by f-gain and the top-K by
  // saliency.
  std::vector<float> saliency(g.num_nodes(), 0.0f);
  {
    GcnTrace trace = model_->Forward(g);
    if (!trace.logits.empty() && l >= 0 &&
        static_cast<size_t>(l) < trace.probs.size()) {
      Matrix grad = model_->InputLogitGradient(trace, l);
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        saliency[v] = grad.RowL1Norm(v);
      }
    }
  }
  float max_saliency = 0.0f;
  for (float s : saliency) max_saliency = std::max(max_saliency, s);
  const float inv_saliency =
      max_saliency > 0.0f ? 1.0f / max_saliency : 0.0f;
  std::vector<NodeId> saliency_order(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) saliency_order[v] = v;
  std::sort(saliency_order.begin(), saliency_order.end(),
            [&](NodeId a, NodeId b) {
              if (saliency[a] != saliency[b]) return saliency[a] > saliency[b];
              return a < b;
            });

  std::vector<bool> in_vs(g.num_nodes(), false);
  std::vector<NodeId> vs;  // V_S, kept sorted on return
  bool valid = false;      // does V_S currently satisfy C2?

  auto verify_set = [&](const std::vector<NodeId>& nodes) {
    ++stats_.everify_calls;
    return verifier_.Verify(g, nodes, l);
  };

  // ---- explanation phase (Alg. 1 lines 3-9) --------------------------------
  while (vs.size() < cc.upper && vs.size() < g.num_nodes()) {
    ++stats_.greedy_rounds;
    const double base_score = acc.Score(gamma);

    // Marginal f-gain for every remaining node (cheap bitset algebra).
    std::vector<Candidate> candidates;
    candidates.reserve(g.num_nodes() - vs.size());
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (in_vs[v]) continue;
      candidates.push_back({v, acc.ScoreWith(v, gamma) - base_score});
    }
    if (candidates.empty()) break;
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.gain != b.gain) return a.gain > b.gain;
                return a.node < b.node;
              });

    // VpExtend on the probe set: top-K by gain plus top-K by saliency.
    const size_t k = std::min(candidates.size(),
                              std::max<size_t>(1, config_.everify_top_k));
    std::vector<NodeId> probe;
    probe.reserve(2 * k);
    for (size_t i = 0; i < k; ++i) probe.push_back(candidates[i].node);
    for (NodeId v : saliency_order) {
      if (probe.size() >= 2 * k) break;
      if (!in_vs[v] &&
          std::find(probe.begin(), probe.end(), v) == probe.end()) {
        probe.push_back(v);
      }
    }
    // Marginal gain lookup for the probed nodes.
    std::vector<double> probe_gain(probe.size(), 0.0);
    for (size_t i = 0; i < probe.size(); ++i) {
      for (const Candidate& c : candidates) {
        if (c.node == probe[i]) {
          probe_gain[i] = c.gain;
          break;
        }
      }
    }
    NodeId best_node = kInvalidNode;
    double best_rank = -1e18;
    double best_gain = 0.0;
    bool best_valid = false;
    for (size_t i = 0; i < probe.size(); ++i) {
      std::vector<NodeId> extended = vs;
      extended.push_back(probe[i]);
      EVerifyResult ev = verify_set(extended);
      if (valid && !ev.IsExplanation()) {
        continue;  // Procedure 2: do not break an achieved explanation
      }
      double rank = probe_gain[i] * inv_graph_size +
                    static_cast<double>(config_.counterfactual_bonus) *
                        (static_cast<double>(ev.prob_subgraph) -
                         static_cast<double>(ev.prob_remainder)) +
                    static_cast<double>(config_.saliency_weight) *
                        static_cast<double>(saliency[probe[i]] * inv_saliency);
      if (rank > best_rank) {
        best_rank = rank;
        best_node = probe[i];
        best_gain = probe_gain[i];
        best_valid = ev.IsExplanation();
      }
    }
    if (best_node == kInvalidNode) break;

    // Stop once valid, the lower bound is met, and explainability is
    // exhausted (monotone f: zero marginal gain ends the greedy).
    if (valid && vs.size() >= std::max<size_t>(cc.lower, 1) &&
        best_gain <= 0.0) {
      break;
    }
    vs.push_back(best_node);
    in_vs[best_node] = true;
    acc.Add(best_node);
    valid = best_valid;
  }

  // ---- lower-bound top-up (Alg. 1 lines 10-17) ------------------------------
  while (vs.size() < cc.lower && vs.size() < g.num_nodes()) {
    const double base_score = acc.Score(gamma);
    NodeId best_node = kInvalidNode;
    double best_gain = -1e18;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (in_vs[v]) continue;
      double gain = acc.ScoreWith(v, gamma) - base_score;
      if (gain > best_gain) {
        best_gain = gain;
        best_node = v;
      }
    }
    if (best_node == kInvalidNode) break;
    vs.push_back(best_node);
    in_vs[best_node] = true;
    acc.Add(best_node);
  }
  if (vs.size() < cc.lower) {
    ++stats_.graphs_infeasible;
    return Status::Infeasible("graph smaller than coverage lower bound");
  }

  // ---- final verification ---------------------------------------------------
  std::sort(vs.begin(), vs.end());
  EVerifyResult final_check = verify_set(vs);
  if (!final_check.IsExplanation()) {
    ++stats_.graphs_infeasible;
    return Status::Infeasible(
        "no consistent+counterfactual subgraph within coverage bounds");
  }

  ExplanationSubgraph out;
  out.graph_index = graph_index;
  out.nodes = vs;
  out.subgraph = g.InducedSubgraph(vs);
  out.explainability =
      (static_cast<double>(analyzer.InfluenceScore(vs)) +
       static_cast<double>(gamma) *
           static_cast<double>(analyzer.DiversityScore(vs))) *
      inv_graph_size;
  ++stats_.graphs_explained;
  return out;
}

Result<ExplanationView> ApproxGvex::ExplainLabel(
    const GraphDatabase& db, const std::vector<ClassLabel>& assigned,
    ClassLabel l, const Deadline* deadline, ExplanationCheckpoint* checkpoint) {
  GVEX_SPAN("approx.explain_label");
  ExplanationView view;
  view.label = l;
  std::vector<size_t> group = GraphDatabase::LabelGroup(assigned, l);
  size_t done = 0;
  for (size_t gi : group) {
    if (deadline != nullptr && deadline->Expired()) {
      std::string note = StrFormat(
          "label explanation exceeded time budget (%zu/%zu graphs done", done,
          group.size());
      note += checkpoint != nullptr ? ", progress journaled)" : ")";
      return Status::Timeout(std::move(note));
    }
    if (checkpoint != nullptr) {
      if (const ExplanationSubgraph* saved = checkpoint->Find(l, gi)) {
        ++stats_.graphs_resumed;
        ++done;
        view.explainability += saved->explainability;
        view.subgraphs.push_back(*saved);
        continue;
      }
    }
    Result<ExplanationSubgraph> sub = ExplainGraph(db.graph(gi), gi, l);
    if (!sub.ok()) {
      if (sub.status().IsInfeasible()) {
        GVEX_LOG(Debug) << "graph " << gi << " infeasible for label " << l;
        ++done;
        continue;  // Alg. 1 line 17: this graph contributes no subgraph
      }
      return sub.status();
    }
    if (checkpoint != nullptr) {
      GVEX_RETURN_NOT_OK(checkpoint->Append(l, *sub));
    }
    ++done;
    view.explainability += sub->explainability;
    view.subgraphs.push_back(std::move(*sub));
  }

  // Summarize phase: one pattern set covering every subgraph of the label
  // group (the view invariant: P^l covers the nodes of G_s^l).
  std::vector<Graph> raw;
  raw.reserve(view.subgraphs.size());
  for (const auto& s : view.subgraphs) raw.push_back(s.subgraph);
  PsumResult summary = Psum(raw, config_);
  view.patterns = std::move(summary.patterns);
  return view;
}

Result<ExplanationViewSet> ApproxGvex::Explain(
    const GraphDatabase& db, const std::vector<ClassLabel>& assigned,
    const std::vector<ClassLabel>& labels, const Deadline* deadline,
    ExplanationCheckpoint* checkpoint) {
  ExplanationViewSet set;
  for (ClassLabel l : labels) {
    GVEX_ASSIGN_OR_RETURN(ExplanationView view,
                          ExplainLabel(db, assigned, l, deadline, checkpoint));
    set.views.push_back(std::move(view));
  }
  return set;
}

}  // namespace gvex
