// Serialization of explanation views, so generated views can be stored,
// shipped to analysts, and queried later without re-running the solvers
// (views are materialized structures — the database-views heritage of the
// paper).
#pragma once

#include <iosfwd>
#include <string>

#include "gvex/common/result.h"
#include "gvex/explain/view.h"

namespace gvex {

Status WriteViewSet(const ExplanationViewSet& set, std::ostream* out);
Result<ExplanationViewSet> ReadViewSet(std::istream* in);

Status SaveViewSet(const ExplanationViewSet& set, const std::string& path);
Result<ExplanationViewSet> LoadViewSet(const std::string& path);

}  // namespace gvex
