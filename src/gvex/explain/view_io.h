// Serialization of explanation views, so generated views can be stored,
// shipped to analysts, and queried later without re-running the solvers
// (views are materialized structures — the database-views heritage of the
// paper).
//
// Writers emit the v2 format (per-view CRC32 sections + end marker);
// readers accept v2 and legacy v1. SaveViewSet is atomic (temp + rename)
// and retries transient IO errors.
#pragma once

#include <iosfwd>
#include <string>

#include "gvex/common/result.h"
#include "gvex/explain/view.h"

namespace gvex {

Status WriteViewSet(const ExplanationViewSet& set, std::ostream* out);
Result<ExplanationViewSet> ReadViewSet(std::istream* in);

/// Legacy v1 stream writer (migration tooling and compat tests).
Status WriteViewSetV1(const ExplanationViewSet& set, std::ostream* out);

Status SaveViewSet(const ExplanationViewSet& set, const std::string& path);
Result<ExplanationViewSet> LoadViewSet(const std::string& path);

/// One "sub ..." record (node list + induced subgraph). Shared with the
/// checkpoint journal so a journaled subgraph restores bit-exactly.
Status WriteExplanationSubgraph(const ExplanationSubgraph& sub,
                                std::ostream* out);
Result<ExplanationSubgraph> ReadExplanationSubgraph(std::istream* in);

}  // namespace gvex
