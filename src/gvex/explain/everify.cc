#include "gvex/explain/everify.h"

#include "gvex/common/failpoint.h"
#include "gvex/obs/obs.h"

namespace gvex {

EVerifyResult EVerify::Verify(const Graph& g,
                              const std::vector<NodeId>& nodes,
                              ClassLabel l) const {
  // Inference is the hot spot of every solver; a delay armed here makes
  // deadline expiry and slow-worker orderings reproducible in tests.
  GVEX_FAILPOINT_NOTIFY("everify.verify");
  GVEX_COUNTER_INC("everify.calls");
  GVEX_LATENCY_US("everify.verify_us");
  EVerifyResult result;
  if (nodes.empty() || l < 0) return result;

  Graph subgraph = g.InducedSubgraph(nodes);
  GcnTrace sub_trace = model_->Forward(subgraph);
  result.consistent = sub_trace.predicted() == l;
  if (!sub_trace.probs.empty() &&
      static_cast<size_t>(l) < sub_trace.probs.size()) {
    result.prob_subgraph = sub_trace.probs[static_cast<size_t>(l)];
  }

  Graph remainder = g.RemoveNodes(nodes);
  if (remainder.num_nodes() == 0) {
    // Everything removed: the remainder has no label, trivially != l.
    result.counterfactual = true;
    result.prob_remainder = 0.0f;
  } else {
    GcnTrace rem_trace = model_->Forward(remainder);
    result.counterfactual = rem_trace.predicted() != l;
    if (static_cast<size_t>(l) < rem_trace.probs.size()) {
      result.prob_remainder = rem_trace.probs[static_cast<size_t>(l)];
    }
  }
  return result;
}

}  // namespace gvex
