#include "gvex/explain/view_io.h"

#include <fstream>

#include "gvex/graph/graph_io.h"

namespace gvex {

namespace {
constexpr const char* kMagic = "gvexviews-v1";
}  // namespace

Status WriteViewSet(const ExplanationViewSet& set, std::ostream* out) {
  (*out) << kMagic << "\n" << set.views.size() << "\n";
  for (const ExplanationView& view : set.views) {
    (*out) << "view " << view.label << " " << view.patterns.size() << " "
           << view.subgraphs.size() << " " << view.explainability << "\n";
    for (const Graph& p : view.patterns) {
      GVEX_RETURN_NOT_OK(WriteGraph(p, out));
    }
    for (const ExplanationSubgraph& s : view.subgraphs) {
      (*out) << "sub " << s.graph_index << " " << s.nodes.size() << " "
             << s.explainability;
      for (NodeId v : s.nodes) (*out) << " " << v;
      (*out) << "\n";
      GVEX_RETURN_NOT_OK(WriteGraph(s.subgraph, out));
    }
  }
  if (!out->good()) return Status::IoError("view stream write failed");
  return Status::OK();
}

Result<ExplanationViewSet> ReadViewSet(std::istream* in) {
  std::string magic;
  if (!((*in) >> magic) || magic != kMagic) {
    return Status::IoError("bad view-set magic");
  }
  size_t num_views = 0;
  if (!((*in) >> num_views)) return Status::IoError("bad view count");
  ExplanationViewSet set;
  for (size_t vi = 0; vi < num_views; ++vi) {
    std::string tag;
    ExplanationView view;
    size_t num_patterns = 0, num_subgraphs = 0;
    if (!((*in) >> tag >> view.label >> num_patterns >> num_subgraphs >>
          view.explainability) ||
        tag != "view") {
      return Status::IoError("bad view header");
    }
    for (size_t p = 0; p < num_patterns; ++p) {
      GVEX_ASSIGN_OR_RETURN(Graph pattern, ReadGraph(in));
      view.patterns.push_back(std::move(pattern));
    }
    for (size_t s = 0; s < num_subgraphs; ++s) {
      ExplanationSubgraph sub;
      size_t num_nodes = 0;
      if (!((*in) >> tag >> sub.graph_index >> num_nodes >>
            sub.explainability) ||
          tag != "sub") {
        return Status::IoError("bad subgraph header");
      }
      sub.nodes.resize(num_nodes);
      for (NodeId& v : sub.nodes) {
        if (!((*in) >> v)) return Status::IoError("bad subgraph node id");
      }
      GVEX_ASSIGN_OR_RETURN(Graph g, ReadGraph(in));
      sub.subgraph = std::move(g);
      view.subgraphs.push_back(std::move(sub));
    }
    set.views.push_back(std::move(view));
  }
  return set;
}

Status SaveViewSet(const ExplanationViewSet& set, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) return Status::IoError("cannot open " + path);
  return WriteViewSet(set, &out);
}

Result<ExplanationViewSet> LoadViewSet(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IoError("cannot open " + path);
  return ReadViewSet(&in);
}

}  // namespace gvex
