#include "gvex/explain/view_io.h"

#include <fstream>
#include <sstream>

#include "gvex/common/failpoint.h"
#include "gvex/common/io_util.h"
#include "gvex/graph/graph_io.h"

namespace gvex {

namespace {
constexpr const char* kMagicV1 = "gvexviews-v1";
constexpr const char* kMagicV2 = "gvexviews-v2";
constexpr const char* kEndTag = "gvexviews-end";

Status WriteViewRecord(const ExplanationView& view, std::ostream* out) {
  (*out) << "view " << view.label << " " << view.patterns.size() << " "
         << view.subgraphs.size() << " " << view.explainability << "\n";
  for (const Graph& p : view.patterns) {
    GVEX_RETURN_NOT_OK(WriteGraph(p, out));
  }
  for (const ExplanationSubgraph& s : view.subgraphs) {
    GVEX_RETURN_NOT_OK(WriteExplanationSubgraph(s, out));
  }
  return Status::OK();
}

Result<ExplanationView> ReadViewRecord(std::istream* in) {
  std::string tag;
  ExplanationView view;
  size_t num_patterns = 0, num_subgraphs = 0;
  if (!((*in) >> tag >> view.label >> num_patterns >> num_subgraphs >>
        view.explainability) ||
      tag != "view") {
    return Status::IoError("bad view header");
  }
  for (size_t p = 0; p < num_patterns; ++p) {
    GVEX_ASSIGN_OR_RETURN(Graph pattern, ReadGraph(in));
    view.patterns.push_back(std::move(pattern));
  }
  for (size_t s = 0; s < num_subgraphs; ++s) {
    GVEX_ASSIGN_OR_RETURN(ExplanationSubgraph sub, ReadExplanationSubgraph(in));
    view.subgraphs.push_back(std::move(sub));
  }
  return view;
}

}  // namespace

Status WriteExplanationSubgraph(const ExplanationSubgraph& s,
                                std::ostream* out) {
  (*out) << "sub " << s.graph_index << " " << s.nodes.size() << " "
         << s.explainability;
  for (NodeId v : s.nodes) (*out) << " " << v;
  (*out) << "\n";
  return WriteGraph(s.subgraph, out);
}

Result<ExplanationSubgraph> ReadExplanationSubgraph(std::istream* in) {
  std::string tag;
  ExplanationSubgraph sub;
  size_t num_nodes = 0;
  if (!((*in) >> tag >> sub.graph_index >> num_nodes >> sub.explainability) ||
      tag != "sub") {
    return Status::IoError("bad subgraph header");
  }
  sub.nodes.resize(num_nodes);
  for (NodeId& v : sub.nodes) {
    if (!((*in) >> v)) return Status::IoError("bad subgraph node id");
  }
  GVEX_ASSIGN_OR_RETURN(Graph g, ReadGraph(in));
  sub.subgraph = std::move(g);
  return sub;
}

Status WriteViewSet(const ExplanationViewSet& set, std::ostream* out) {
  GVEX_FAILPOINT_RETURN("view_io.write");
  SetMaxPrecision(out);
  (*out) << kMagicV2 << "\n" << set.views.size() << "\n";
  for (const ExplanationView& view : set.views) {
    std::ostringstream rec;
    SetMaxPrecision(&rec);
    GVEX_RETURN_NOT_OK(WriteViewRecord(view, &rec));
    GVEX_RETURN_NOT_OK(WriteSection(out, rec.str()));
  }
  (*out) << kEndTag << " " << set.views.size() << "\n";
  if (!out->good()) return Status::IoError("view stream write failed");
  return Status::OK();
}

Status WriteViewSetV1(const ExplanationViewSet& set, std::ostream* out) {
  (*out) << kMagicV1 << "\n" << set.views.size() << "\n";
  for (const ExplanationView& view : set.views) {
    GVEX_RETURN_NOT_OK(WriteViewRecord(view, out));
  }
  if (!out->good()) return Status::IoError("view stream write failed");
  return Status::OK();
}

Result<ExplanationViewSet> ReadViewSet(std::istream* in) {
  GVEX_FAILPOINT_RETURN("view_io.read");
  std::string magic;
  if (!((*in) >> magic)) return Status::IoError("bad view-set magic");
  size_t num_views = 0;
  if (!((*in) >> num_views)) return Status::IoError("bad view count");
  ExplanationViewSet set;
  if (magic == kMagicV2) {
    for (size_t vi = 0; vi < num_views; ++vi) {
      GVEX_ASSIGN_OR_RETURN(std::string payload, ReadSection(in));
      std::istringstream rec(payload);
      GVEX_ASSIGN_OR_RETURN(ExplanationView view, ReadViewRecord(&rec));
      set.views.push_back(std::move(view));
    }
    std::string tag;
    size_t n_end = 0;
    if (!((*in) >> tag >> n_end) || tag != kEndTag || n_end != num_views) {
      return Status::IoError("view-set end marker missing (truncated file?)");
    }
    return set;
  }
  if (magic == kMagicV1) {
    for (size_t vi = 0; vi < num_views; ++vi) {
      GVEX_ASSIGN_OR_RETURN(ExplanationView view, ReadViewRecord(in));
      set.views.push_back(std::move(view));
    }
    return set;
  }
  return Status::IoError("bad view-set magic");
}

Status SaveViewSet(const ExplanationViewSet& set, const std::string& path) {
  return RetryIo([&] {
    return AtomicSave(path,
                      [&](std::ostream* out) { return WriteViewSet(set, out); });
  });
}

Result<ExplanationViewSet> LoadViewSet(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IoError("cannot open " + path);
  return ReadViewSet(&in);
}

}  // namespace gvex
