// StreamGVEX (Algorithm 3): single-pass node-stream maintenance of
// explanation views with an anytime 1/4-approximation on the seen prefix.
//
// Per arriving node the algorithm maintains a bounded node cache V_S
// (Procedure 4, IncUpdateVS):
//   (a) below the u_l budget, accept;
//   (b) if the node adds no new pattern structure (IncPGen finds nothing
//       its local neighborhood contributes), skip;
//   (c) otherwise swap against the cheapest cached node v- only when the
//       replacement gain is at least twice the loss — the streaming
//       submodular-maximization rule that preserves the 1/4 ratio.
//
// Patterns are maintained incrementally (IncUpdateP): newly uncovered
// nodes trigger localized mining (IncPGen over the r-hop neighborhood),
// and at the end of each label group a reduction pass removes patterns
// that no longer contribute coverage — the batched equivalent of
// Procedure 5's swap, preserving full node coverage and small edge miss.
//
// C2 (consistency + counterfactual) is enforced at finalization with a
// greedy repair from the candidate pool V_u, mirroring the lower-bound
// top-up of Algorithm 3 line 10.
#pragma once

#include <string>
#include <unordered_set>
#include <vector>

#include "gvex/common/result.h"
#include "gvex/common/stopwatch.h"
#include "gvex/explain/config.h"
#include "gvex/explain/everify.h"
#include "gvex/explain/view.h"
#include "gvex/gnn/model.h"
#include "gvex/graph/graph_db.h"

namespace gvex {

struct StreamGvexStats {
  size_t nodes_processed = 0;
  size_t accepts = 0;
  size_t swaps = 0;
  size_t skips = 0;
  size_t everify_calls = 0;
  size_t graphs_explained = 0;
  size_t graphs_infeasible = 0;
};

/// \brief Resumable state of an interrupted ExplainLabel call, committed
/// at graph boundaries: the finished subgraphs, the incremental pattern
/// state (patterns + canonical codes), and the stats as of the last
/// completed graph. Because each graph's node cache is rebuilt from its
/// own stream on resume, the restored run preserves Algorithm 3's anytime
/// 1/4-approximation on the seen prefix, and a resumed run finishes with
/// the same view and stats as a straight-through one.
struct StreamGvexSnapshot {
  bool in_progress = false;
  ClassLabel label = -1;
  size_t graphs_done = 0;  ///< position within the label group
  ExplanationView partial;
  std::vector<Graph> patterns;
  std::vector<std::string> codes;
  StreamGvexStats stats;
};

/// \brief The streaming solver. One instance may process many graphs;
/// pattern state accumulates per label within an Explain* call.
class StreamGvex {
 public:
  StreamGvex(const GcnClassifier* model, Configuration config)
      : model_(model), verifier_(model), config_(std::move(config)) {}

  const Configuration& config() const { return config_; }
  const StreamGvexStats& stats() const { return stats_; }
  void ResetStats() { stats_ = StreamGvexStats{}; }

  /// Stream the nodes of `g` (in `order` if given, else 0..n-1) and return
  /// the maintained explanation subgraph. `patterns`/`codes` carry the
  /// label-level incremental pattern state across graphs.
  Result<ExplanationSubgraph> ExplainGraphStream(
      const Graph& g, size_t graph_index, ClassLabel l,
      std::vector<Graph>* patterns,
      std::unordered_set<std::string>* codes,
      const std::vector<NodeId>* order = nullptr);

  /// Views per label, as in ApproxGvex::Explain but via the stream path.
  Result<ExplanationView> ExplainLabel(const GraphDatabase& db,
                                       const std::vector<ClassLabel>& assigned,
                                       ClassLabel l,
                                       const Deadline* deadline = nullptr,
                                       uint64_t order_seed = 0);

  Result<ExplanationViewSet> Explain(const GraphDatabase& db,
                                     const std::vector<ClassLabel>& assigned,
                                     const std::vector<ClassLabel>& labels,
                                     const Deadline* deadline = nullptr,
                                     uint64_t order_seed = 0);

  /// Live ingest (gvex::ingest): feed one graph into the resident per-label
  /// state without a surrounding ExplainLabel call. The first call opens a
  /// resident session for `l`; later calls must carry the same label
  /// (kFailedPrecondition otherwise — one solver instance holds one label's
  /// incremental state). Accepted and infeasible graphs both advance the
  /// committed position, so Snapshot()/Restore() capture ingest state at
  /// graph granularity exactly as they do for an interrupted ExplainLabel.
  /// Nodes stream in natural order (0..n-1) so replaying the same graphs in
  /// the same order rebuilds byte-identical state. On success
  /// `explainability` (when given) receives the accepted subgraph's
  /// contribution.
  Status IngestGraph(const Graph& g, size_t graph_index, ClassLabel l,
                     double* explainability = nullptr);

  /// Finalized copy of the resident ingest state: the partial view with
  /// ReducePatterns applied, leaving the resident session untouched so
  /// ingest continues afterwards. kFailedPrecondition when no session is
  /// open.
  Result<ExplanationView> ResidentView() const;

  /// Graphs committed into the resident session (0 when none is open).
  size_t resident_graphs() const { return label_in_progress_ ? group_pos_ : 0; }

  /// True while an ExplainLabel resume point or ingest session is held.
  bool in_progress() const { return label_in_progress_; }

  /// Capture the resumable state of an ExplainLabel call that returned an
  /// error (deadline expiry, injected fault, ...). State is committed per
  /// completed graph; a half-processed graph is rolled back and replayed.
  StreamGvexSnapshot Snapshot() const;

  /// Restore a snapshot into a *fresh* solver (or one whose previous run
  /// completed). The next ExplainLabel call for the snapshot's label
  /// continues after the last completed graph instead of starting over.
  /// A solver that already holds resident state rejects the restore with
  /// kFailedPrecondition — silently merging two runs' pattern state would
  /// corrupt both.
  Status Restore(const StreamGvexSnapshot& snapshot);

 private:
  const GcnClassifier* model_;
  EVerify verifier_;
  Configuration config_;
  StreamGvexStats stats_;

  // Resume state for the in-flight ExplainLabel (see StreamGvexSnapshot).
  bool label_in_progress_ = false;
  ClassLabel resume_label_ = -1;
  size_t group_pos_ = 0;
  ExplanationView partial_view_;
  std::vector<Graph> label_patterns_;
  std::unordered_set<std::string> label_codes_;
  StreamGvexStats committed_stats_;
};

/// Reduce a pattern set to a coverage-minimal subset over `subgraphs`
/// (greedy weighted set cover over the *given* patterns; full node
/// coverage is preserved). Returns the reduced set and the edge loss.
struct PatternReduction {
  std::vector<Graph> patterns;
  double edge_loss = 0.0;
};
PatternReduction ReducePatterns(const std::vector<Graph>& patterns,
                                const std::vector<Graph>& subgraphs,
                                const Configuration& config);

}  // namespace gvex
