// Append-only checkpoint journal for long explanation jobs: each completed
// per-graph ExplanationSubgraph is journaled as a CRC32-framed record, so
// a crashed ApproxGVEX / ParallelApproxExplain run resumes by skipping the
// graphs already explained instead of redoing hours of work. Records
// round-trip bit-exactly (max float precision), so a resumed run saves a
// byte-identical view set to an uninterrupted one.
//
// The journal is deliberately tolerant on load: a torn or corrupt tail
// (the crash wrote half a record) is discarded and the valid prefix used.
#pragma once

#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "gvex/common/result.h"
#include "gvex/explain/view.h"

namespace gvex {

class ExplanationCheckpoint {
 public:
  /// Open a journal at `path`. With `resume`, existing records are loaded
  /// (tolerating a torn tail) and later appends extend the file; without,
  /// any existing file is truncated. `cadence` is the number of appended
  /// records between flushes (1 = flush every record).
  static Result<std::unique_ptr<ExplanationCheckpoint>> Open(
      const std::string& path, bool resume, size_t cadence = 1);

  /// The journaled subgraph for (label, graph), or nullptr. The pointer
  /// stays valid for the checkpoint's lifetime (the map is append-only).
  const ExplanationSubgraph* Find(ClassLabel label, size_t graph_index) const;

  /// Journal one completed subgraph. Thread-safe; a record is either fully
  /// framed in the file or absent. Fails closed on IO errors so callers
  /// never believe unjournaled work is durable.
  Status Append(ClassLabel label, const ExplanationSubgraph& sub);

  Status Flush();

  /// Records loaded at Open time (resumed work).
  size_t loaded_count() const { return loaded_count_; }
  const std::string& path() const { return path_; }

 private:
  ExplanationCheckpoint() = default;

  mutable std::mutex mu_;
  std::string path_;
  std::unique_ptr<std::ofstream> out_;
  size_t cadence_ = 1;
  size_t unflushed_ = 0;
  size_t loaded_count_ = 0;
  std::map<std::pair<ClassLabel, size_t>, ExplanationSubgraph> records_;
};

}  // namespace gvex
