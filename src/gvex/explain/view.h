// Explanation views (§2.2): the two-tier structure of higher-tier graph
// patterns P^l and lower-tier explanation subgraphs G_s^l.
#pragma once

#include <string>
#include <vector>

#include "gvex/graph/graph.h"
#include "gvex/graph/graph_db.h"

namespace gvex {

/// \brief One explanation subgraph G_s^l: a node-induced subgraph of a
/// database graph, kept with its provenance so the counterfactual
/// complement G \ G_s can always be reconstructed.
struct ExplanationSubgraph {
  size_t graph_index = 0;       ///< index of G in the database
  std::vector<NodeId> nodes;    ///< V_s in G's node ids, sorted ascending
  Graph subgraph;               ///< induced subgraph (with features)

  /// Per-graph explainability contribution (I(V_s) + γD(V_s)) / |V|.
  double explainability = 0.0;
};

/// \brief An explanation view G_V^l = (P^l, G_s^l) for one class label.
struct ExplanationView {
  ClassLabel label = -1;
  std::vector<Graph> patterns;                 ///< P^l (types only)
  std::vector<ExplanationSubgraph> subgraphs;  ///< G_s^l

  /// f(G_V^l): sum of per-subgraph explainability contributions (Eq. 2).
  double explainability = 0.0;

  /// Total selected nodes across subgraphs.
  size_t TotalNodes() const;
  /// Total edges across subgraphs.
  size_t TotalEdges() const;
  /// Total nodes/edges across patterns (numerator of Eq. 11).
  size_t PatternNodes() const;
  size_t PatternEdges() const;

  /// Compression metric of Eq. 11: 1 - (|V_P|+|E_P|) / (|V_S|+|E_S|).
  double Compression() const;

  std::string Summary() const;
};

/// \brief The full output of GVEX over a label set: one view per label.
struct ExplanationViewSet {
  std::vector<ExplanationView> views;

  double TotalExplainability() const;
  const ExplanationView* ForLabel(ClassLabel l) const;
};

}  // namespace gvex
