// Psum: the summarize phase of §4 — compute a set of patterns P^l that
// covers every node of the explanation subgraphs while minimizing the total
// edge-miss weight w(P) = 1 - |P_Es| / |Es| (a greedy weighted set cover,
// H_{u_l}-approximate per Lemma 4.3).
#pragma once

#include <vector>

#include "gvex/explain/config.h"
#include "gvex/graph/graph.h"
#include "gvex/mining/pgen.h"

namespace gvex {

struct PsumResult {
  std::vector<Graph> patterns;
  /// Fraction of subgraph edges not covered by any selected pattern
  /// ("edge loss", the quantity of Fig. 8(c,d)).
  double edge_loss = 0.0;
  /// Total node-coverage sanity: true iff every subgraph node is covered.
  bool full_node_coverage = false;
};

/// Summarize `subgraphs` into a covering pattern set.
///
/// Candidates come from PGen; any node that no mined candidate covers is
/// mopped up by its singleton type pattern, so full node coverage always
/// holds on return (the defining property of a graph view, §2.1).
PsumResult Psum(const std::vector<Graph>& subgraphs,
                const Configuration& config);

}  // namespace gvex
