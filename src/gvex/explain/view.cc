#include "gvex/explain/view.h"

#include "gvex/common/string_util.h"

namespace gvex {

size_t ExplanationView::TotalNodes() const {
  size_t total = 0;
  for (const auto& s : subgraphs) total += s.nodes.size();
  return total;
}

size_t ExplanationView::TotalEdges() const {
  size_t total = 0;
  for (const auto& s : subgraphs) total += s.subgraph.num_edges();
  return total;
}

size_t ExplanationView::PatternNodes() const {
  size_t total = 0;
  for (const auto& p : patterns) total += p.num_nodes();
  return total;
}

size_t ExplanationView::PatternEdges() const {
  size_t total = 0;
  for (const auto& p : patterns) total += p.num_edges();
  return total;
}

double ExplanationView::Compression() const {
  const double subgraph_size =
      static_cast<double>(TotalNodes() + TotalEdges());
  if (subgraph_size <= 0.0) return 0.0;
  const double pattern_size =
      static_cast<double>(PatternNodes() + PatternEdges());
  return 1.0 - pattern_size / subgraph_size;
}

std::string ExplanationView::Summary() const {
  return StrFormat(
      "view(label=%d, subgraphs=%zu, patterns=%zu, nodes=%zu, edges=%zu, "
      "f=%.3f, compression=%.3f)",
      label, subgraphs.size(), patterns.size(), TotalNodes(), TotalEdges(),
      explainability, Compression());
}

double ExplanationViewSet::TotalExplainability() const {
  double total = 0.0;
  for (const auto& v : views) total += v.explainability;
  return total;
}

const ExplanationView* ExplanationViewSet::ForLabel(ClassLabel l) const {
  for (const auto& v : views) {
    if (v.label == l) return &v;
  }
  return nullptr;
}

}  // namespace gvex
