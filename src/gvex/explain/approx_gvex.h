// ApproxGVEX (Algorithm 1): the "explain-and-summarize" 1/2-approximation.
//
// Explain phase: greedy marginal-gain selection of nodes V_S under the
// coverage constraint [b_l, u_l], with candidates screened by VpExtend
// (Procedure 2) — EVerify checks of the consistency/counterfactual
// constraint C2 plus the size bound.
//
// As written in the paper, VpExtend accepts a candidate only when the
// extended subgraph already satisfies C2; taken literally this cannot
// bootstrap from the empty set (a one-node subgraph is rarely consistent
// and its removal rarely flips the label). We therefore implement the
// procedure the way the cost model of §4 implies it must behave: every
// screened candidate is EVerify'd, and while C2 does not yet hold the
// verifier's class probabilities act as progress signals — the greedy
// rank is the submodular gain in f (which preserves the 1/2-approximation
// argument) plus a small configurable bonus toward consistency and
// counterfactuality. Once C2 holds, candidates that would break it are
// rejected, exactly as Procedure 2 prescribes.
//
// Summarize phase: Psum over the label group's explanation subgraphs.
#pragma once

#include <vector>

#include "gvex/common/result.h"
#include "gvex/common/stopwatch.h"
#include "gvex/explain/checkpoint.h"
#include "gvex/explain/config.h"
#include "gvex/explain/everify.h"
#include "gvex/explain/view.h"
#include "gvex/gnn/model.h"
#include "gvex/graph/graph_db.h"

namespace gvex {

/// \brief Counters for the efficiency experiments (Fig. 9).
struct ApproxGvexStats {
  size_t graphs_attempted = 0;
  size_t graphs_explained = 0;
  size_t graphs_infeasible = 0;
  size_t graphs_resumed = 0;  ///< taken from a checkpoint, not recomputed
  size_t everify_calls = 0;
  size_t greedy_rounds = 0;
};

/// \brief The two-step explain-and-summarize solver.
class ApproxGvex {
 public:
  ApproxGvex(const GcnClassifier* model, Configuration config)
      : model_(model), verifier_(model), config_(std::move(config)) {}

  const Configuration& config() const { return config_; }
  const ApproxGvexStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ApproxGvexStats{}; }

  /// Explain a single graph w.r.t. label l (the body of Algorithm 1).
  /// Returns kInfeasible when no node set within [b_l, u_l] satisfies C2.
  Result<ExplanationSubgraph> ExplainGraph(const Graph& g, size_t graph_index,
                                           ClassLabel l);

  /// Assemble the explanation view for one label group: run ExplainGraph
  /// on every graph the model assigned label l, then summarize with Psum.
  /// Graphs with no feasible explanation are skipped (counted in stats).
  ///
  /// With a `checkpoint`, each completed subgraph is journaled and graphs
  /// already in the journal are restored instead of recomputed, so a
  /// killed run resumes where it stopped.
  Result<ExplanationView> ExplainLabel(const GraphDatabase& db,
                                       const std::vector<ClassLabel>& assigned,
                                       ClassLabel l,
                                       const Deadline* deadline = nullptr,
                                       ExplanationCheckpoint* checkpoint =
                                           nullptr);

  /// Views for every label of interest.
  Result<ExplanationViewSet> Explain(const GraphDatabase& db,
                                     const std::vector<ClassLabel>& assigned,
                                     const std::vector<ClassLabel>& labels,
                                     const Deadline* deadline = nullptr,
                                     ExplanationCheckpoint* checkpoint =
                                         nullptr);

 private:
  const GcnClassifier* model_;
  EVerify verifier_;
  Configuration config_;
  ApproxGvexStats stats_;
};

}  // namespace gvex
