#include "gvex/explain/snapshot_io.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "gvex/common/io_util.h"
#include "gvex/explain/view_io.h"
#include "gvex/graph/graph_io.h"

namespace gvex {
namespace {

constexpr const char* kMagic = "gvexsnap-v1";

Status ReadCode(std::istream* in, std::string* code) {
  std::string tag;
  size_t len = 0;
  if (!(*in >> tag >> len) || tag != "code") {
    return Status::IoError("snapshot: malformed code record");
  }
  in->get();  // the '\n' after the length
  code->resize(len);
  if (len > 0) in->read(code->data(), static_cast<std::streamsize>(len));
  if (!in->good() || in->get() != '\n') {
    return Status::IoError("snapshot: truncated code payload");
  }
  return Status::OK();
}

}  // namespace

Status WriteStreamSnapshot(const StreamGvexSnapshot& snap, std::ostream* out) {
  SetMaxPrecision(out);
  (*out) << kMagic << "\n";
  (*out) << "state " << (snap.in_progress ? 1 : 0) << " " << snap.label << " "
         << snap.graphs_done << "\n";
  (*out) << "stats " << snap.stats.nodes_processed << " "
         << snap.stats.accepts << " " << snap.stats.swaps << " "
         << snap.stats.skips << " " << snap.stats.everify_calls << " "
         << snap.stats.graphs_explained << " " << snap.stats.graphs_infeasible
         << "\n";
  (*out) << "view " << snap.partial.label << " " << snap.partial.explainability
         << " " << snap.partial.subgraphs.size() << " "
         << snap.partial.patterns.size() << "\n";
  for (const auto& sub : snap.partial.subgraphs) {
    GVEX_RETURN_NOT_OK(WriteExplanationSubgraph(sub, out));
  }
  for (const auto& p : snap.partial.patterns) {
    GVEX_RETURN_NOT_OK(WriteGraph(p, out));
  }
  (*out) << "patterns " << snap.patterns.size() << "\n";
  for (const auto& p : snap.patterns) {
    GVEX_RETURN_NOT_OK(WriteGraph(p, out));
  }
  // Sorted for stable bytes: the live set is unordered, and membership is
  // all that matters to the solver.
  std::vector<std::string> codes = snap.codes;
  std::sort(codes.begin(), codes.end());
  (*out) << "codes " << codes.size() << "\n";
  for (const auto& c : codes) {
    (*out) << "code " << c.size() << "\n" << c << "\n";
  }
  (*out) << "end\n";
  if (!out->good()) return Status::IoError("snapshot write failed");
  return Status::OK();
}

Result<StreamGvexSnapshot> ReadStreamSnapshot(std::istream* in) {
  std::string word;
  if (!(*in >> word) || word != kMagic) {
    return Status::IoError("snapshot: bad magic");
  }
  StreamGvexSnapshot snap;
  int in_progress = 0;
  if (!(*in >> word >> in_progress >> snap.label >> snap.graphs_done) ||
      word != "state") {
    return Status::IoError("snapshot: malformed state record");
  }
  snap.in_progress = in_progress != 0;
  if (!(*in >> word >> snap.stats.nodes_processed >> snap.stats.accepts >>
        snap.stats.swaps >> snap.stats.skips >> snap.stats.everify_calls >>
        snap.stats.graphs_explained >> snap.stats.graphs_infeasible) ||
      word != "stats") {
    return Status::IoError("snapshot: malformed stats record");
  }
  size_t nsubs = 0, nvpats = 0;
  if (!(*in >> word >> snap.partial.label >> snap.partial.explainability >>
        nsubs >> nvpats) ||
      word != "view") {
    return Status::IoError("snapshot: malformed view record");
  }
  snap.partial.subgraphs.reserve(nsubs);
  for (size_t i = 0; i < nsubs; ++i) {
    GVEX_ASSIGN_OR_RETURN(ExplanationSubgraph sub,
                          ReadExplanationSubgraph(in));
    snap.partial.subgraphs.push_back(std::move(sub));
  }
  snap.partial.patterns.reserve(nvpats);
  for (size_t i = 0; i < nvpats; ++i) {
    GVEX_ASSIGN_OR_RETURN(Graph p, ReadGraph(in));
    snap.partial.patterns.push_back(std::move(p));
  }
  size_t npats = 0;
  if (!(*in >> word >> npats) || word != "patterns") {
    return Status::IoError("snapshot: malformed patterns record");
  }
  snap.patterns.reserve(npats);
  for (size_t i = 0; i < npats; ++i) {
    GVEX_ASSIGN_OR_RETURN(Graph p, ReadGraph(in));
    snap.patterns.push_back(std::move(p));
  }
  size_t ncodes = 0;
  if (!(*in >> word >> ncodes) || word != "codes") {
    return Status::IoError("snapshot: malformed codes record");
  }
  snap.codes.reserve(ncodes);
  for (size_t i = 0; i < ncodes; ++i) {
    std::string code;
    GVEX_RETURN_NOT_OK(ReadCode(in, &code));
    snap.codes.push_back(std::move(code));
  }
  if (!(*in >> word) || word != "end") {
    return Status::IoError("snapshot: missing end marker");
  }
  return snap;
}

}  // namespace gvex
