// Node-classification support (the NC column of Table 1).
//
// GVEX explains graph-level predictions; node-level predictions on a
// large graph reduce to the same machinery through the standard ego-graph
// construction the paper itself applies to PRODUCTS (§6.2): the k-hop
// neighborhood subgraph around the target node is classified in place of
// the node, and its explanation view explains the node's label.
#pragma once

#include "gvex/common/result.h"
#include "gvex/explain/approx_gvex.h"
#include "gvex/explain/config.h"
#include "gvex/explain/view.h"
#include "gvex/gnn/model.h"
#include "gvex/graph/graph.h"

namespace gvex {

struct NodeExplanationOptions {
  /// Ego-graph radius; should be >= the GNN's receptive field (its layer
  /// count) so the node's prediction is fully determined by the ego graph.
  unsigned ego_radius = 3;
  /// Cap on ego-graph size (hub nodes explode otherwise). The target
  /// node is always kept.
  size_t max_ego_nodes = 256;
};

/// \brief Result of explaining one node's classification.
struct NodeExplanation {
  NodeId target = kInvalidNode;       ///< node in the host graph
  ClassLabel label = -1;              ///< M's label for the ego graph
  std::vector<NodeId> ego_nodes;      ///< host ids of the ego graph
  ExplanationSubgraph subgraph;       ///< within the ego graph
  std::vector<Graph> patterns;        ///< covering patterns
};

/// Explain why node `target` of `host` receives its label: build the ego
/// graph, run ApproxGVEX on it, and summarize. The returned subgraph's
/// provenance ids index the *ego graph*; `ego_nodes` maps them back to
/// host ids (ego_nodes[i] is the host id of ego node i).
Result<NodeExplanation> ExplainNodeClassification(
    const GcnClassifier& model, const Graph& host, NodeId target,
    const Configuration& config, const NodeExplanationOptions& options = {});

}  // namespace gvex
