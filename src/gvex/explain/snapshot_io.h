// Serialization of StreamGvexSnapshot — the resumable state of a
// StreamGVEX run (stream_gvex.h) — so the live-ingest journal
// (gvex/ingest/journal.h) can checkpoint the resident solver and a
// restarted server can restore it bit-exactly.
//
// The encoding reuses the view/graph record writers (view_io.h,
// graph_io.h) at max float precision, so a written snapshot restores to
// state that re-serializes byte-identically. Canonical codes are written
// sorted: the in-memory set is unordered, and stable bytes keep journal
// checkpoints reproducible across runs.
#pragma once

#include <iosfwd>

#include "gvex/common/result.h"
#include "gvex/explain/stream_gvex.h"

namespace gvex {

Status WriteStreamSnapshot(const StreamGvexSnapshot& snap, std::ostream* out);
Result<StreamGvexSnapshot> ReadStreamSnapshot(std::istream* in);

}  // namespace gvex
