#include "gvex/explain/stream_gvex.h"

#include <algorithm>
#include <cassert>

#include "gvex/common/bitset.h"
#include "gvex/common/failpoint.h"
#include "gvex/common/logging.h"
#include "gvex/common/rng.h"
#include "gvex/common/thread_pool.h"
#include "gvex/influence/influence.h"
#include "gvex/matching/match_cache.h"
#include "gvex/matching/vf2.h"
#include "gvex/mining/canonical.h"
#include "gvex/mining/pgen.h"
#include "gvex/obs/obs.h"

namespace gvex {
namespace {

// Visit u's neighbors in the undirected sense (directed graphs store
// out-edges only; in-neighbors need a scan, acceptable at repair rates).
template <typename Fn>
void ForEachNeighborBothDirections(const Graph& g, NodeId u, Fn&& fn) {
  for (const auto& nb : g.neighbors(u)) fn(nb.node);
  if (g.directed()) {
    for (NodeId w = 0; w < g.num_nodes(); ++w) {
      if (w != u && g.HasEdge(w, u)) fn(w);
    }
  }
}

// f(V_S \ v') - style removal loss requires a rebuild: unions are not
// invertible. |V_S| <= u_l keeps this cheap.
double RemovalLoss(const InfluenceAnalyzer& analyzer,
                   const std::vector<NodeId>& vs, NodeId victim, float gamma,
                   double current_score) {
  std::vector<NodeId> without;
  without.reserve(vs.size() - 1);
  for (NodeId v : vs) {
    if (v != victim) without.push_back(v);
  }
  InfluenceAccumulator acc(&analyzer);
  acc.Rebuild(without);
  return current_score - acc.Score(gamma);
}

}  // namespace

Result<ExplanationSubgraph> StreamGvex::ExplainGraphStream(
    const Graph& g, size_t graph_index, ClassLabel l,
    std::vector<Graph>* patterns, std::unordered_set<std::string>* codes,
    const std::vector<NodeId>* order) {
  if (g.num_nodes() == 0) {
    return Status::InvalidArgument("cannot explain an empty graph");
  }
  GVEX_SPAN("stream.explain_graph");
  GVEX_COUNTER_INC("stream.graphs");
  CoverageConstraint cc = config_.ConstraintFor(l);
  if (cc.lower > cc.upper || cc.upper == 0) {
    return Status::InvalidArgument("invalid coverage constraint");
  }
  // Keep the counterfactual test meaningful: never cache the whole graph.
  cc.upper = std::min(cc.upper, g.num_nodes() - 1);
  cc.lower = std::min(cc.lower, cc.upper);
  if (cc.upper == 0) {
    ++stats_.graphs_infeasible;
    return Status::Infeasible("single-node graph has no proper subgraph");
  }

  // IncEVerify surrogate: the influence/diversity state is prepared once
  // and queried incrementally per arriving node (same asymptotics as the
  // paper's per-arrival Jacobian update, which touches every node once).
  GVEX_ASSIGN_OR_RETURN(
      InfluenceAnalyzer analyzer,
      InfluenceAnalyzer::Build(*model_, g, config_.MakeInfluenceOptions()));
  const float gamma = config_.gamma;

  std::vector<NodeId> stream;
  if (order != nullptr) {
    stream = *order;
  } else {
    stream.resize(g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) stream[v] = v;
  }

  InfluenceAccumulator acc(&analyzer);
  std::vector<NodeId> vs;
  std::vector<NodeId> vu;  // rejected/evicted candidates, for the top-up

  for (NodeId v : stream) {
    // IncUpdateVS (Procedure 4) is the per-arrival hot path of the
    // streaming solver; an armed failpoint interrupts a run mid-graph.
    // All pattern-state mutation happens after the loop, so an injected
    // error leaves `patterns`/`codes` untouched and the graph replays
    // cleanly on resume.
    GVEX_FAILPOINT_RETURN("stream.inc_update_vs");
    ++stats_.nodes_processed;
    GVEX_COUNTER_INC("stream.nodes");
    if (vs.size() < cc.upper) {
      // Case (a): budget available, accept.
      vs.push_back(v);
      acc.Add(v);
      ++stats_.accepts;
      GVEX_COUNTER_INC("stream.accepts");
      continue;
    }
    // Case (b): does v contribute new pattern structure? IncPGen over its
    // local neighborhood; if every local pattern is already known, skip.
    // The screen only needs existence of one unseen pattern, so it mines
    // with tightened bounds.
    PgenOptions screen = config_.pgen;
    screen.max_pattern_nodes = std::min<size_t>(screen.max_pattern_nodes, 3);
    screen.max_candidates = 16;
    screen.max_enumerated_per_graph =
        std::min<size_t>(screen.max_enumerated_per_graph, 300);
    std::vector<PatternCandidate> local =
        GenerateLocalPatternCandidates(g, v, config_.stream_hops, screen);
    bool contributes = false;
    for (const auto& cand : local) {
      if (codes->find(cand.canonical) == codes->end()) {
        contributes = true;
        break;
      }
    }
    if (!contributes) {
      vu.push_back(v);
      ++stats_.skips;
      GVEX_COUNTER_INC("stream.skips");
      continue;
    }
    // Case (c): Procedure 4 swap. Find the cached node whose removal
    // loses the least explainability.
    const double current = acc.Score(gamma);
    NodeId victim = kInvalidNode;
    double min_loss = 1e18;
    for (NodeId cached : vs) {
      double loss = RemovalLoss(analyzer, vs, cached, gamma, current);
      if (loss < min_loss) {
        min_loss = loss;
        victim = cached;
      }
    }
    // Gains measured against V_u = V_S \ {v-} (Procedure 4 line 3).
    std::vector<NodeId> without;
    for (NodeId cached : vs) {
      if (cached != victim) without.push_back(cached);
    }
    InfluenceAccumulator base(&analyzer);
    base.Rebuild(without);
    double w_new = base.ScoreWith(v, gamma) - base.Score(gamma);
    double w_old = base.ScoreWith(victim, gamma) - base.Score(gamma);
    if (w_new >= 2.0 * w_old) {
      without.push_back(v);
      vs = std::move(without);
      acc.Rebuild(vs);
      vu.push_back(victim);
      ++stats_.swaps;
      GVEX_COUNTER_INC("stream.swaps");
    } else {
      vu.push_back(v);
      ++stats_.skips;
      GVEX_COUNTER_INC("stream.skips");
    }
  }

  // Gradient saliency, used by the C2 repair phase to probe label-critical
  // nodes the f-driven cache may have passed over (cf. ApproxGVEX).
  std::vector<float> saliency(g.num_nodes(), 0.0f);
  {
    GcnTrace trace = model_->Forward(g);
    if (!trace.logits.empty() && l >= 0 &&
        static_cast<size_t>(l) < trace.probs.size()) {
      Matrix grad = model_->InputLogitGradient(trace, l);
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        saliency[v] = grad.RowL1Norm(v);
      }
    }
  }
  float max_saliency = 0.0f;
  for (float s : saliency) max_saliency = std::max(max_saliency, s);
  const float inv_saliency =
      max_saliency > 0.0f ? 1.0f / max_saliency : 0.0f;

  // Lower-bound top-up from V_u (Algorithm 3 line 10).
  std::sort(vu.begin(), vu.end());
  vu.erase(std::unique(vu.begin(), vu.end()), vu.end());
  auto in_vs = [&](NodeId v) {
    return std::find(vs.begin(), vs.end(), v) != vs.end();
  };
  while (vs.size() < cc.lower && !vu.empty()) {
    double base_score = acc.Score(gamma);
    size_t best_i = static_cast<size_t>(-1);
    double best_gain = -1e18;
    for (size_t i = 0; i < vu.size(); ++i) {
      if (in_vs(vu[i])) continue;
      double gain = acc.ScoreWith(vu[i], gamma) - base_score;
      if (gain > best_gain) {
        best_gain = gain;
        best_i = i;
      }
    }
    if (best_i == static_cast<size_t>(-1)) break;
    vs.push_back(vu[best_i]);
    acc.Add(vu[best_i]);
    vu.erase(vu.begin() + static_cast<ptrdiff_t>(best_i));
  }
  if (vs.size() < cc.lower) {
    ++stats_.graphs_infeasible;
    return Status::Infeasible("stream could not meet coverage lower bound");
  }

  // Finalize C2: if the maintained cache is not yet consistent +
  // counterfactual, repair greedily from V_u within the budget.
  std::sort(vs.begin(), vs.end());
  ++stats_.everify_calls;
  EVerifyResult check = verifier_.Verify(g, vs, l);
  while (!check.IsExplanation() && vs.size() < cc.upper && !vu.empty()) {
    // Rank the pool by marginal f-gain, then EVerify the top few and pick
    // the one that makes the most consistency/counterfactual progress —
    // the same guided selection ApproxGVEX's VpExtend performs.
    double base_score = acc.Score(gamma);
    std::vector<std::pair<double, size_t>> ranked;
    ranked.reserve(vu.size());
    for (size_t i = 0; i < vu.size(); ++i) {
      if (in_vs(vu[i])) continue;
      double gain = acc.ScoreWith(vu[i], gamma) - base_score;
      ranked.emplace_back(
          gain / static_cast<double>(g.num_nodes()) +
              static_cast<double>(config_.saliency_weight) *
                  static_cast<double>(saliency[vu[i]] * inv_saliency),
          i);
    }
    if (ranked.empty()) break;
    std::sort(ranked.rbegin(), ranked.rend());
    size_t probe = std::min<size_t>(ranked.size(),
                                    std::max<size_t>(1, config_.everify_top_k));
    size_t best_i = static_cast<size_t>(-1);
    double best_rank = -1e18;
    for (size_t p = 0; p < probe; ++p) {
      size_t i = ranked[p].second;
      std::vector<NodeId> trial = vs;
      trial.push_back(vu[i]);
      std::sort(trial.begin(), trial.end());
      ++stats_.everify_calls;
      EVerifyResult ev = verifier_.Verify(g, trial, l);
      double rank = ranked[p].first +
                    static_cast<double>(config_.counterfactual_bonus) *
                        (static_cast<double>(ev.prob_subgraph) -
                         static_cast<double>(ev.prob_remainder));
      if (ev.IsExplanation()) rank += 10.0;  // take a valid completion now
      if (rank > best_rank) {
        best_rank = rank;
        best_i = i;
      }
    }
    if (best_i == static_cast<size_t>(-1)) break;
    vs.push_back(vu[best_i]);
    acc.Add(vu[best_i]);
    vu.erase(vu.begin() + static_cast<ptrdiff_t>(best_i));
    std::sort(vs.begin(), vs.end());
    ++stats_.everify_calls;
    check = verifier_.Verify(g, vs, l);
  }
  // Swap repair: when the cache is at capacity but C2 fails (important
  // nodes were evicted by the f-driven 2x rule, which guards
  // explainability only), hill-climb over (victim, candidate) swaps
  // guided by saliency and EVerify progress until validity is restored or
  // progress stalls. Bounded by u_l rounds of (3 x 8) probes.
  if (!check.IsExplanation() && vs.size() == cc.upper && !vu.empty()) {
    double progress = static_cast<double>(check.prob_subgraph) -
                      static_cast<double>(check.prob_remainder);
    for (size_t round = 0; round < cc.upper && !check.IsExplanation();
         ++round) {
      // Victims: cheapest explainability removals first.
      const double current = acc.Score(gamma);
      std::vector<std::pair<double, NodeId>> victims;
      for (NodeId cached : vs) {
        victims.emplace_back(
            RemovalLoss(analyzer, vs, cached, gamma, current), cached);
      }
      std::sort(victims.begin(), victims.end());
      // Candidates: most salient pool nodes first.
      std::vector<NodeId> cands;
      for (NodeId u : vu) {
        if (!in_vs(u)) cands.push_back(u);
      }
      std::sort(cands.begin(), cands.end(), [&](NodeId a, NodeId b) {
        if (saliency[a] != saliency[b]) return saliency[a] > saliency[b];
        return a < b;
      });
      const size_t victim_probe = std::min<size_t>(victims.size(), 3);
      const size_t cand_probe = std::min<size_t>(cands.size(), 8);
      std::vector<NodeId> best_trial;
      EVerifyResult best_ev;
      double best_progress = progress;
      for (size_t vi = 0; vi < victim_probe; ++vi) {
        for (size_t ci = 0; ci < cand_probe; ++ci) {
          std::vector<NodeId> trial;
          trial.reserve(vs.size());
          for (NodeId cached : vs) {
            if (cached != victims[vi].second) trial.push_back(cached);
          }
          trial.push_back(cands[ci]);
          std::sort(trial.begin(), trial.end());
          ++stats_.everify_calls;
          EVerifyResult ev = verifier_.Verify(g, trial, l);
          double p = static_cast<double>(ev.prob_subgraph) -
                     static_cast<double>(ev.prob_remainder);
          if (ev.IsExplanation()) p += 10.0;
          if (p > best_progress + 1e-9) {
            best_progress = p;
            best_trial = std::move(trial);
            best_ev = ev;
          }
        }
        if (best_progress > 9.0) break;  // found a valid completion
      }
      if (best_trial.empty()) break;  // no improving swap: stall
      vs = std::move(best_trial);
      acc.Rebuild(vs);
      check = best_ev;
      progress = best_progress;
      ++stats_.swaps;
    }
  }
  // Saturated-model fallback: when the classifier's probabilities are
  // near 0/1, partial explanations give the hill-climb no gradient. Try
  // the top-saliency node sets directly (constant extra EVerify work).
  if (!check.IsExplanation()) {
    // Anytime semantics: only nodes the stream has delivered may appear.
    std::vector<bool> seen(g.num_nodes(), false);
    for (NodeId v : stream) seen[v] = true;
    std::vector<NodeId> by_saliency;
    by_saliency.reserve(g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (seen[v]) by_saliency.push_back(v);
    }
    std::sort(by_saliency.begin(), by_saliency.end(),
              [&](NodeId a, NodeId b) {
                if (saliency[a] != saliency[b]) {
                  return saliency[a] > saliency[b];
                }
                return a < b;
              });
    // From each of the top seeds, grow a connected region by always
    // absorbing the most salient neighbor (explanations are localized
    // substructures; a bare top-k saliency set is usually disconnected).
    const size_t seed_probe = std::min<size_t>(by_saliency.size(), 3);
    for (size_t si = 0; si < seed_probe && !check.IsExplanation(); ++si) {
      std::vector<NodeId> region{by_saliency[si]};
      std::vector<bool> in_region(g.num_nodes(), false);
      in_region[by_saliency[si]] = true;
      while (region.size() < cc.upper) {
        NodeId best_nb = kInvalidNode;
        float best_sal = -1.0f;
        for (NodeId r : region) {
          ForEachNeighborBothDirections(g, r, [&](NodeId w) {
            if (!in_region[w] && seen[w] && saliency[w] > best_sal) {
              best_sal = saliency[w];
              best_nb = w;
            }
          });
        }
        if (best_nb == kInvalidNode) break;
        in_region[best_nb] = true;
        region.push_back(best_nb);
        if (region.size() >= std::max<size_t>(cc.lower, 3)) {
          std::vector<NodeId> trial = region;
          std::sort(trial.begin(), trial.end());
          ++stats_.everify_calls;
          EVerifyResult ev = verifier_.Verify(g, trial, l);
          if (ev.IsExplanation()) {
            vs = std::move(trial);
            acc.Rebuild(vs);
            check = ev;
            break;
          }
        }
      }
    }
  }
  if (!check.IsExplanation()) {
    ++stats_.graphs_infeasible;
    return Status::Infeasible("stream found no valid explanation subgraph");
  }

  // IncUpdateP: make sure the incremental pattern set covers the final
  // V_S; uncovered nodes trigger localized mining, then singletons.
  Graph subgraph = g.InducedSubgraph(vs);
  CoverageResult cov = ComputeCoverage(*patterns, subgraph, config_.match);
  for (NodeId local = 0; local < subgraph.num_nodes(); ++local) {
    if (cov.covered_nodes.Test(local)) continue;
    bool covered = false;
    std::vector<PatternCandidate> local_cands = GenerateLocalPatternCandidates(
        subgraph, local, config_.stream_hops, config_.pgen);
    // Among the unseen candidates that cover this node, adopt the one
    // covering the most structure (edges, then nodes) — the small-edge-miss
    // goal of Procedure 5.
    const Graph* best_pattern = nullptr;
    const std::string* best_code = nullptr;
    size_t best_edges = 0;
    size_t best_nodes = 0;
    CoverageResult best_cov;
    size_t evaluated = 0;
    for (const auto& cand : local_cands) {
      if (codes->count(cand.canonical) > 0) continue;
      if (++evaluated > 12) break;
      CoverageResult c1 =
          MatchCache::Global().Coverage(cand.pattern, subgraph, config_.match);
      if (!c1.covered_nodes.Test(local)) continue;
      size_t e = c1.covered_edges.Count();
      size_t n = c1.covered_nodes.Count();
      if (best_pattern == nullptr || e > best_edges ||
          (e == best_edges && n > best_nodes)) {
        best_pattern = &cand.pattern;
        best_code = &cand.canonical;
        best_edges = e;
        best_nodes = n;
        best_cov = std::move(c1);
      }
    }
    if (best_pattern != nullptr) {
      patterns->push_back(*best_pattern);
      codes->insert(*best_code);
      for (size_t idx : best_cov.covered_nodes.ToVector()) {
        cov.covered_nodes.Set(idx);
      }
      covered = true;
    }
    if (!covered) {
      Graph singleton;
      singleton.AddNode(subgraph.node_type(local));
      std::string code = CanonicalCode(singleton);
      if (codes->insert(code).second) {
        patterns->push_back(std::move(singleton));
      }
      cov.covered_nodes.Set(local);
    }
  }

  // Edge mop-up (Procedure 5's "small edge misses" goal): edges whose
  // endpoints are covered can still be missed by the pattern tier; give
  // each uncovered edge a chance to contribute a pattern — minimally its
  // own 2-node edge pattern.
  {
    CoverageResult ecov =
        ComputeCoverage(*patterns, subgraph, config_.match);
    auto edges = EdgeList(subgraph);
    size_t budget = 10;
    for (size_t e = 0; e < edges.size() && budget > 0; ++e) {
      if (ecov.covered_edges.Test(e)) continue;
      auto [u, v] = edges[e];
      Graph edge_pattern(subgraph.directed());
      edge_pattern.AddNode(subgraph.node_type(u));
      edge_pattern.AddNode(subgraph.node_type(v));
      Status st = edge_pattern.AddEdge(0, 1, subgraph.GetEdgeType(u, v));
      (void)st;
      std::string code = CanonicalCode(edge_pattern);
      if (codes->insert(code).second) {
        patterns->push_back(std::move(edge_pattern));
        --budget;
      }
    }
  }

  ExplanationSubgraph out;
  out.graph_index = graph_index;
  out.nodes = vs;
  out.subgraph = std::move(subgraph);
  out.explainability =
      (static_cast<double>(analyzer.InfluenceScore(vs)) +
       static_cast<double>(gamma) *
           static_cast<double>(analyzer.DiversityScore(vs))) /
      static_cast<double>(g.num_nodes());
  ++stats_.graphs_explained;
  return out;
}

PatternReduction ReducePatterns(const std::vector<Graph>& patterns,
                                const std::vector<Graph>& subgraphs,
                                const Configuration& config) {
  PatternReduction result;
  if (subgraphs.empty()) return result;

  size_t total_nodes = 0;
  size_t total_edges = 0;
  std::vector<size_t> node_base(subgraphs.size());
  std::vector<size_t> edge_base(subgraphs.size());
  for (size_t i = 0; i < subgraphs.size(); ++i) {
    node_base[i] = total_nodes;
    edge_base[i] = total_edges;
    total_nodes += subgraphs[i].num_nodes();
    total_edges += subgraphs[i].num_edges();
  }

  struct Cov {
    DynamicBitset nodes;
    DynamicBitset edges;
    double weight;
  };
  // Same pattern×subgraph coverage matrix as Psum: independent cells, so
  // cached lookups (the stream re-reduces the same pairs every round) fan
  // out across the shared pool; the greedy pass below stays serial.
  std::vector<Cov> covs(patterns.size());
  ThreadPool::Shared().ParallelFor(patterns.size(), [&](size_t pi) {
    covs[pi].nodes = DynamicBitset(total_nodes);
    covs[pi].edges = DynamicBitset(total_edges);
    for (size_t gi = 0; gi < subgraphs.size(); ++gi) {
      CoverageResult local = MatchCache::Global().Coverage(
          patterns[pi], subgraphs[gi], config.match);
      for (size_t v : local.covered_nodes.ToVector()) {
        covs[pi].nodes.Set(node_base[gi] + v);
      }
      for (size_t e : local.covered_edges.ToVector()) {
        covs[pi].edges.Set(edge_base[gi] + e);
      }
    }
    covs[pi].weight =
        total_edges == 0
            ? 0.0
            : 1.0 - static_cast<double>(covs[pi].edges.Count()) /
                        static_cast<double>(total_edges);
  });

  DynamicBitset covered_nodes(total_nodes);
  DynamicBitset covered_edges(total_edges);
  std::vector<bool> chosen(patterns.size(), false);
  constexpr double kWeightFloor = 1e-2;
  for (;;) {
    size_t best = static_cast<size_t>(-1);
    double best_ratio = 0.0;
    for (size_t pi = 0; pi < patterns.size(); ++pi) {
      if (chosen[pi]) continue;
      // Greedy cover over nodes AND edges (Lemma 4.3's objective wants
      // full node coverage with minimal edge misses, so patterns that
      // only add edge coverage still earn selection).
      size_t gain = covered_nodes.MarginalCount(covs[pi].nodes);
      size_t edge_gain = covered_edges.MarginalCount(covs[pi].edges);
      if (gain + edge_gain == 0) continue;
      double ratio = static_cast<double>(gain + edge_gain) /
                     (covs[pi].weight + kWeightFloor);
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best = pi;
      }
    }
    if (best == static_cast<size_t>(-1)) break;
    chosen[best] = true;
    covered_nodes.UnionWith(covs[best].nodes);
    covered_edges.UnionWith(covs[best].edges);
    result.patterns.push_back(patterns[best]);
  }
  result.edge_loss =
      total_edges == 0
          ? 0.0
          : 1.0 - static_cast<double>(covered_edges.Count()) /
                      static_cast<double>(total_edges);
  return result;
}

Result<ExplanationView> StreamGvex::ExplainLabel(
    const GraphDatabase& db, const std::vector<ClassLabel>& assigned,
    ClassLabel l, const Deadline* deadline, uint64_t order_seed) {
  GVEX_SPAN("stream.explain_label");
  // Start fresh unless we are resuming this exact label (after a deadline
  // expiry or injected fault, possibly via Snapshot()/Restore()).
  if (!label_in_progress_ || resume_label_ != l) {
    // Abandoning a half-finished run for a different label retires its
    // partial subgraphs: they are discarded below and never queried
    // again, so drop their cache entries eagerly instead of letting
    // them squat in the shards until an epoch dump (match_cache.h).
    if (label_in_progress_ && resume_label_ != l) {
      for (const auto& s : partial_view_.subgraphs) {
        MatchCache::Global().InvalidateTarget(s.subgraph);
      }
    }
    label_in_progress_ = true;
    resume_label_ = l;
    group_pos_ = 0;
    partial_view_ = ExplanationView{};
    partial_view_.label = l;
    label_patterns_.clear();
    label_codes_.clear();
    committed_stats_ = stats_;
  } else {
    // Roll back stats of the half-processed graph; it replays in full, so
    // a resumed run ends with straight-through stats.
    stats_ = committed_stats_;
  }

  std::vector<size_t> group = GraphDatabase::LabelGroup(assigned, l);
  for (; group_pos_ < group.size(); ++group_pos_) {
    size_t gi = group[group_pos_];
    if (deadline != nullptr && deadline->Expired()) {
      return Status::Timeout("stream label explanation exceeded time budget");
    }
    const Graph& g = db.graph(gi);
    std::vector<NodeId> order(g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) order[v] = v;
    if (order_seed != 0) {
      Rng rng(order_seed + gi);
      rng.Shuffle(&order);
    }
    Result<ExplanationSubgraph> sub =
        ExplainGraphStream(g, gi, l, &label_patterns_, &label_codes_, &order);
    if (!sub.ok()) {
      if (sub.status().IsInfeasible()) {
        committed_stats_ = stats_;
        continue;
      }
      return sub.status();  // resume state retained for Snapshot()
    }
    partial_view_.explainability += sub->explainability;
    partial_view_.subgraphs.push_back(std::move(*sub));
    committed_stats_ = stats_;
  }

  ExplanationView view = std::move(partial_view_);
  std::vector<Graph> patterns = std::move(label_patterns_);
  label_in_progress_ = false;
  partial_view_ = ExplanationView{};
  label_patterns_.clear();
  label_codes_.clear();

  // Batched Procedure 5 swap: drop patterns that stopped contributing.
  std::vector<Graph> raw;
  raw.reserve(view.subgraphs.size());
  for (const auto& s : view.subgraphs) raw.push_back(s.subgraph);
  PatternReduction reduction = ReducePatterns(patterns, raw, config_);
  view.patterns = std::move(reduction.patterns);
  return view;
}

StreamGvexSnapshot StreamGvex::Snapshot() const {
  StreamGvexSnapshot snap;
  snap.in_progress = label_in_progress_;
  snap.label = resume_label_;
  snap.graphs_done = group_pos_;
  snap.partial = partial_view_;
  snap.patterns = label_patterns_;
  snap.codes.assign(label_codes_.begin(), label_codes_.end());
  snap.stats = committed_stats_;
  return snap;
}

Status StreamGvex::Restore(const StreamGvexSnapshot& snapshot) {
  if (label_in_progress_) {
    return Status::FailedPrecondition(
        "restore into a solver with resident state for label " +
        std::to_string(resume_label_) +
        " (finish or discard the in-flight run first)");
  }
  label_in_progress_ = snapshot.in_progress;
  resume_label_ = snapshot.label;
  group_pos_ = snapshot.graphs_done;
  partial_view_ = snapshot.partial;
  label_patterns_ = snapshot.patterns;
  label_codes_.clear();
  label_codes_.insert(snapshot.codes.begin(), snapshot.codes.end());
  stats_ = snapshot.stats;
  committed_stats_ = snapshot.stats;
  return Status::OK();
}

Status StreamGvex::IngestGraph(const Graph& g, size_t graph_index,
                               ClassLabel l, double* explainability) {
  if (!label_in_progress_) {
    label_in_progress_ = true;
    resume_label_ = l;
    group_pos_ = 0;
    partial_view_ = ExplanationView{};
    partial_view_.label = l;
    label_patterns_.clear();
    label_codes_.clear();
    committed_stats_ = stats_;
  } else if (resume_label_ != l) {
    return Status::FailedPrecondition(
        "resident session holds label " + std::to_string(resume_label_) +
        ", cannot ingest label " + std::to_string(l));
  }
  Result<ExplanationSubgraph> sub =
      ExplainGraphStream(g, graph_index, l, &label_patterns_, &label_codes_);
  if (!sub.ok()) {
    if (sub.status().IsInfeasible()) {
      // An unexplainable graph still advances the committed position so a
      // journal replay lands on the same state.
      ++group_pos_;
      committed_stats_ = stats_;
    } else {
      stats_ = committed_stats_;  // roll back the half-processed graph
    }
    return sub.status();
  }
  if (explainability != nullptr) *explainability = sub->explainability;
  partial_view_.explainability += sub->explainability;
  partial_view_.subgraphs.push_back(std::move(*sub));
  ++group_pos_;
  committed_stats_ = stats_;
  return Status::OK();
}

Result<ExplanationView> StreamGvex::ResidentView() const {
  if (!label_in_progress_) {
    return Status::FailedPrecondition("no resident ingest state to finalize");
  }
  ExplanationView view = partial_view_;
  std::vector<Graph> raw;
  raw.reserve(view.subgraphs.size());
  for (const auto& s : view.subgraphs) raw.push_back(s.subgraph);
  PatternReduction reduction = ReducePatterns(label_patterns_, raw, config_);
  view.patterns = std::move(reduction.patterns);
  return view;
}

Result<ExplanationViewSet> StreamGvex::Explain(
    const GraphDatabase& db, const std::vector<ClassLabel>& assigned,
    const std::vector<ClassLabel>& labels, const Deadline* deadline,
    uint64_t order_seed) {
  ExplanationViewSet set;
  for (ClassLabel l : labels) {
    GVEX_ASSIGN_OR_RETURN(
        ExplanationView view,
        ExplainLabel(db, assigned, l, deadline, order_seed));
    set.views.push_back(std::move(view));
  }
  return set;
}

}  // namespace gvex
