#include "gvex/explain/verifier.h"

#include "gvex/common/string_util.h"
#include "gvex/explain/everify.h"
#include "gvex/matching/vf2.h"

namespace gvex {

ViewVerification VerifyExplanationView(const ExplanationView& view,
                                       const GraphDatabase& db,
                                       const GcnClassifier& model,
                                       const Configuration& config) {
  ViewVerification result;

  // C1: pattern coverage of every subgraph's nodes.
  result.c1_graph_view = true;
  for (size_t si = 0; si < view.subgraphs.size(); ++si) {
    const Graph& sub = view.subgraphs[si].subgraph;
    CoverageResult cov =
        ComputeCoverage(view.patterns, sub, config.match);
    if (cov.covered_nodes.Count() != sub.num_nodes()) {
      result.c1_graph_view = false;
      result.detail += StrFormat("C1: subgraph %zu has %zu/%zu nodes covered; ",
                                 si, cov.covered_nodes.Count(),
                                 sub.num_nodes());
      break;
    }
  }

  // C2: consistency + counterfactual for every subgraph.
  result.c2_explanation = true;
  EVerify verifier(&model);
  for (size_t si = 0; si < view.subgraphs.size(); ++si) {
    const ExplanationSubgraph& s = view.subgraphs[si];
    EVerifyResult ev =
        verifier.Verify(db.graph(s.graph_index), s.nodes, view.label);
    if (!ev.IsExplanation()) {
      result.c2_explanation = false;
      result.detail += StrFormat(
          "C2: subgraph %zu (graph %zu) consistent=%d counterfactual=%d; ",
          si, s.graph_index, ev.consistent ? 1 : 0, ev.counterfactual ? 1 : 0);
      break;
    }
  }

  // C3: per-graph coverage bounds.
  const CoverageConstraint& cc = config.ConstraintFor(view.label);
  result.c3_coverage = true;
  for (size_t si = 0; si < view.subgraphs.size(); ++si) {
    size_t n = view.subgraphs[si].nodes.size();
    if (n < cc.lower || n > cc.upper) {
      result.c3_coverage = false;
      result.detail += StrFormat("C3: subgraph %zu selects %zu nodes outside "
                                 "[%zu, %zu]; ",
                                 si, n, cc.lower, cc.upper);
      break;
    }
  }
  return result;
}

}  // namespace gvex
