#include "gvex/explain/node_classification.h"

#include <algorithm>

#include "gvex/explain/psum.h"

namespace gvex {

Result<NodeExplanation> ExplainNodeClassification(
    const GcnClassifier& model, const Graph& host, NodeId target,
    const Configuration& config, const NodeExplanationOptions& options) {
  if (target >= host.num_nodes()) {
    return Status::InvalidArgument("target node out of range");
  }
  if (!host.has_features()) {
    return Status::InvalidArgument("host graph lacks features");
  }

  // Ego graph around the target, capped in size with the target pinned.
  std::vector<NodeId> ego = host.KHopNeighborhood(target, options.ego_radius);
  if (ego.size() > options.max_ego_nodes) {
    // Keep the closest nodes: KHopNeighborhood returns sorted ids, so
    // re-rank by BFS distance via radius shrinking.
    for (unsigned r = options.ego_radius; r > 0 && ego.size() >
                                          options.max_ego_nodes; --r) {
      ego = host.KHopNeighborhood(target, r - 1);
    }
    if (ego.size() > options.max_ego_nodes) {
      ego.resize(options.max_ego_nodes);
    }
    if (std::find(ego.begin(), ego.end(), target) == ego.end()) {
      ego.push_back(target);
      std::sort(ego.begin(), ego.end());
    }
  }

  NodeExplanation result;
  result.target = target;
  result.ego_nodes = ego;

  Graph ego_graph = host.InducedSubgraph(ego);
  ClassLabel label = model.Predict(ego_graph);
  if (label < 0) {
    return Status::Infeasible("model assigns no label to the ego graph");
  }
  result.label = label;

  ApproxGvex solver(&model, config);
  GVEX_ASSIGN_OR_RETURN(ExplanationSubgraph sub,
                        solver.ExplainGraph(ego_graph, /*graph_index=*/0,
                                            label));
  PsumResult summary = Psum({sub.subgraph}, config);
  result.subgraph = std::move(sub);
  result.patterns = std::move(summary.patterns);
  return result;
}

}  // namespace gvex
