#include "gvex/explain/query.h"

#include "gvex/matching/match_cache.h"

namespace gvex {

namespace {

inline bool Cancelled(const CancellationToken* cancel) {
  return cancel != nullptr && cancel->cancelled();
}

}  // namespace

bool ViewQuery::Has(const Graph& pattern, const Graph& target) const {
  if (use_cache_) {
    return MatchCache::Global().HasMatch(pattern, target, options_);
  }
  return Vf2Matcher::HasMatch(pattern, target, options_);
}

size_t ViewQuery::Count(const Graph& pattern, const Graph& target,
                        const MatchOptions& options) const {
  if (use_cache_) {
    return MatchCache::Global().CountMatches(pattern, target, options);
  }
  return Vf2Matcher::FindMatches(pattern, target, options).size();
}

std::vector<size_t> ViewQuery::SubgraphsContaining(
    const ExplanationView& view, const Graph& pattern,
    const CancellationToken* cancel) const {
  std::vector<size_t> hits;
  for (size_t i = 0; i < view.subgraphs.size(); ++i) {
    if (Cancelled(cancel)) break;
    if (Has(pattern, view.subgraphs[i].subgraph)) {
      hits.push_back(i);
    }
  }
  return hits;
}

size_t ViewQuery::Support(const ExplanationView& view, const Graph& pattern,
                          const CancellationToken* cancel) const {
  return SubgraphsContaining(view, pattern, cancel).size();
}

std::vector<Graph> ViewQuery::DiscriminativePatterns(
    const ExplanationView& of, const ExplanationView& against,
    const CancellationToken* cancel) const {
  std::vector<Graph> discriminative;
  for (size_t i : DiscriminativePatternIndices(of, against, cancel)) {
    discriminative.push_back(of.patterns[i]);
  }
  return discriminative;
}

std::vector<size_t> ViewQuery::DiscriminativePatternIndices(
    const ExplanationView& of, const ExplanationView& against,
    const CancellationToken* cancel) const {
  std::vector<size_t> discriminative;
  for (size_t i = 0; i < of.patterns.size(); ++i) {
    const Graph& p = of.patterns[i];
    if (Cancelled(cancel)) break;
    bool found_in_other = false;
    for (const auto& s : against.subgraphs) {
      if (Cancelled(cancel)) break;
      if (Has(p, s.subgraph)) {
        found_in_other = true;
        break;
      }
    }
    if (!found_in_other && !Cancelled(cancel)) discriminative.push_back(i);
  }
  return discriminative;
}

std::vector<size_t> ViewQuery::PatternSupports(
    const ExplanationView& view, const CancellationToken* cancel) const {
  std::vector<size_t> supports;
  supports.reserve(view.patterns.size());
  for (const Graph& p : view.patterns) {
    if (Cancelled(cancel)) break;
    supports.push_back(Support(view, p, cancel));
  }
  return supports;
}

std::vector<ViewQuery::Hit> ViewQuery::FindHits(
    const ExplanationView& view, const Graph& pattern,
    size_t max_embeddings_per_graph, const CancellationToken* cancel) const {
  std::vector<Hit> hits;
  MatchOptions capped = options_;
  capped.max_matches = max_embeddings_per_graph;
  for (const auto& s : view.subgraphs) {
    if (Cancelled(cancel)) break;
    size_t count = Count(pattern, s.subgraph, capped);
    if (count > 0) {
      hits.push_back({s.graph_index, count});
    }
  }
  return hits;
}

}  // namespace gvex
