#include "gvex/explain/query.h"

#include "gvex/matching/match_cache.h"

namespace gvex {

std::vector<size_t> ViewQuery::SubgraphsContaining(
    const ExplanationView& view, const Graph& pattern) const {
  std::vector<size_t> hits;
  for (size_t i = 0; i < view.subgraphs.size(); ++i) {
    if (MatchCache::Global().HasMatch(pattern, view.subgraphs[i].subgraph,
                                      options_)) {
      hits.push_back(i);
    }
  }
  return hits;
}

size_t ViewQuery::Support(const ExplanationView& view,
                          const Graph& pattern) const {
  return SubgraphsContaining(view, pattern).size();
}

std::vector<Graph> ViewQuery::DiscriminativePatterns(
    const ExplanationView& of, const ExplanationView& against) const {
  std::vector<Graph> discriminative;
  for (const Graph& p : of.patterns) {
    bool found_in_other = false;
    for (const auto& s : against.subgraphs) {
      if (MatchCache::Global().HasMatch(p, s.subgraph, options_)) {
        found_in_other = true;
        break;
      }
    }
    if (!found_in_other) discriminative.push_back(p);
  }
  return discriminative;
}

std::vector<size_t> ViewQuery::PatternSupports(
    const ExplanationView& view) const {
  std::vector<size_t> supports;
  supports.reserve(view.patterns.size());
  for (const Graph& p : view.patterns) {
    supports.push_back(Support(view, p));
  }
  return supports;
}

std::vector<ViewQuery::Hit> ViewQuery::FindHits(
    const ExplanationView& view, const Graph& pattern,
    size_t max_embeddings_per_graph) const {
  std::vector<Hit> hits;
  MatchOptions capped = options_;
  capped.max_matches = max_embeddings_per_graph;
  for (const auto& s : view.subgraphs) {
    size_t count =
        MatchCache::Global().CountMatches(pattern, s.subgraph, capped);
    if (count > 0) {
      hits.push_back({s.graph_index, count});
    }
  }
  return hits;
}

}  // namespace gvex
