// View verification (Lemma 3.1): given a two-tier structure, check
//   C1 — it is a graph view: the patterns cover all subgraph nodes via
//        node-induced subgraph isomorphism;
//   C2 — it is an explanation view: every subgraph is consistent and
//        counterfactual under M;
//   C3 — it properly covers the label group: each per-graph node selection
//        lies within the coverage constraint [b_l, u_l].
#pragma once

#include <string>

#include "gvex/explain/config.h"
#include "gvex/explain/view.h"
#include "gvex/gnn/model.h"
#include "gvex/graph/graph_db.h"

namespace gvex {

struct ViewVerification {
  bool c1_graph_view = false;
  bool c2_explanation = false;
  bool c3_coverage = false;
  std::string detail;

  bool ok() const { return c1_graph_view && c2_explanation && c3_coverage; }
};

ViewVerification VerifyExplanationView(const ExplanationView& view,
                                       const GraphDatabase& db,
                                       const GcnClassifier& model,
                                       const Configuration& config);

}  // namespace gvex
