// Configuration C = (θ, r, {[b_l, u_l]}) of §3.2, plus the algorithmic
// knobs the paper leaves to the implementation (γ trade-off of Eq. 2,
// influence backend, pattern-mining bounds, candidate-verification budget).
#pragma once

#include <cstddef>
#include <unordered_map>

#include "gvex/graph/graph.h"
#include "gvex/influence/influence.h"
#include "gvex/matching/vf2.h"
#include "gvex/mining/pgen.h"

namespace gvex {

/// \brief Per-label coverage constraint [b_l, u_l] on the number of nodes an
/// explanation subgraph may select from a graph (Algorithm 1 enforces these
/// per graph: the while-loop bound and the V_u top-up phase).
struct CoverageConstraint {
  size_t lower = 0;
  size_t upper = 15;
};

/// \brief The user-facing configuration C.
struct Configuration {
  /// Influence threshold θ (Eq. 5).
  float theta = 0.1f;
  /// Diversity radius r (Eq. 6).
  float radius = 0.25f;
  /// Influence/diversity trade-off γ (Eq. 2).
  float gamma = 0.5f;

  /// Coverage constraints per class label; labels not present fall back to
  /// `default_coverage`.
  std::unordered_map<ClassLabel, CoverageConstraint> coverage;
  CoverageConstraint default_coverage;

  /// Influence backend (exact Jacobian vs random-walk surrogate).
  InfluenceBackend influence_backend = InfluenceBackend::kRandomWalk;

  /// Pattern mining bounds for PGen / IncPGen.
  PgenOptions pgen;

  /// Matching semantics for coverage verification (C1).
  MatchOptions match;

  /// How many top-gain candidates get full EVerify inference per greedy
  /// round (the VpExtend loop of Algorithm 1 line 4-7; inference on every
  /// candidate is the paper's written form, a top-K screen keeps the same
  /// selection on all but pathological ties at a fraction of the cost).
  size_t everify_top_k = 8;

  /// Weight of the consistency/counterfactual progress bonus when ranking
  /// screened candidates (see ApproxGVEX; 0 recovers pure f-greedy).
  float counterfactual_bonus = 0.5f;

  /// Weight of normalized gradient saliency in the candidate ranking.
  /// Saliency is the first-order estimate of a node's removal impact on
  /// the class logit — the signal that guides selection while the
  /// verifier's probabilities are saturated (confident models move them
  /// only once a near-complete explanation is assembled).
  float saliency_weight = 0.5f;

  /// r-hop neighborhood for IncPGen in the streaming algorithm (§5).
  unsigned stream_hops = 2;

  const CoverageConstraint& ConstraintFor(ClassLabel l) const {
    auto it = coverage.find(l);
    return it == coverage.end() ? default_coverage : it->second;
  }

  InfluenceOptions MakeInfluenceOptions() const {
    InfluenceOptions opts;
    opts.backend = influence_backend;
    opts.theta = theta;
    opts.radius = radius;
    return opts;
  }
};

}  // namespace gvex
