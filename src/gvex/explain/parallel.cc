#include "gvex/explain/parallel.h"

#include <algorithm>
#include <mutex>

#include "gvex/common/thread_pool.h"
#include "gvex/explain/psum.h"

namespace gvex {

Result<ExplanationViewSet> ParallelApproxExplain(
    const GcnClassifier& model, const GraphDatabase& db,
    const std::vector<ClassLabel>& assigned,
    const std::vector<ClassLabel>& labels, const Configuration& config,
    size_t num_threads) {
  // Flatten (label, graph) work items.
  struct WorkItem {
    ClassLabel label;
    size_t graph_index;
  };
  std::vector<WorkItem> items;
  for (ClassLabel l : labels) {
    for (size_t gi : GraphDatabase::LabelGroup(assigned, l)) {
      items.push_back({l, gi});
    }
  }

  std::vector<Result<ExplanationSubgraph>> results(
      items.size(), Status::Internal("not run"));
  {
    ThreadPool pool(num_threads);
    // One solver per worker slot would need worker ids; per-item solvers
    // are cheap relative to the explain work itself.
    pool.ParallelFor(items.size(), [&](size_t i) {
      ApproxGvex solver(&model, config);
      results[i] =
          solver.ExplainGraph(db.graph(items[i].graph_index),
                              items[i].graph_index, items[i].label);
    });
  }

  ExplanationViewSet set;
  for (ClassLabel l : labels) {
    ExplanationView view;
    view.label = l;
    for (size_t i = 0; i < items.size(); ++i) {
      if (items[i].label != l) continue;
      if (!results[i].ok()) {
        if (results[i].status().IsInfeasible() ||
            results[i].status().IsInvalidArgument()) {
          continue;
        }
        return results[i].status();
      }
      view.explainability += results[i]->explainability;
      view.subgraphs.push_back(std::move(*results[i]));
    }
    std::sort(view.subgraphs.begin(), view.subgraphs.end(),
              [](const ExplanationSubgraph& a, const ExplanationSubgraph& b) {
                return a.graph_index < b.graph_index;
              });
    std::vector<Graph> raw;
    raw.reserve(view.subgraphs.size());
    for (const auto& s : view.subgraphs) raw.push_back(s.subgraph);
    PsumResult summary = Psum(raw, config);
    view.patterns = std::move(summary.patterns);
    set.views.push_back(std::move(view));
  }
  return set;
}

}  // namespace gvex
