#include "gvex/explain/parallel.h"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "gvex/common/logging.h"
#include "gvex/common/string_util.h"
#include "gvex/common/thread_pool.h"
#include "gvex/explain/psum.h"
#include "gvex/obs/obs.h"

namespace gvex {

namespace {

struct WorkItem {
  ClassLabel label;
  size_t graph_index;
};

// Outcome markers for items that never produced a Result.
Status NotAttempted() { return Status::Internal("not attempted"); }

bool IsSkippableMiss(const Status& st) {
  // Alg. 1 line 17: these graphs contribute no subgraph by design.
  return st.IsInfeasible() || st.IsInvalidArgument();
}

}  // namespace

Result<ExplanationViewSet> ParallelApproxExplain(
    const GcnClassifier& model, const GraphDatabase& db,
    const std::vector<ClassLabel>& assigned,
    const std::vector<ClassLabel>& labels, const Configuration& config,
    const ParallelExplainOptions& options) {
  GVEX_SPAN("parallel.explain");
  // Flatten (label, graph) work items.
  std::vector<WorkItem> items;
  for (ClassLabel l : labels) {
    for (size_t gi : GraphDatabase::LabelGroup(assigned, l)) {
      items.push_back({l, gi});
    }
  }
  GVEX_COUNTER_ADD("parallel.items", items.size());

  CancellationToken local_cancel;
  CancellationToken* cancel =
      options.cancel != nullptr ? options.cancel : &local_cancel;

  std::vector<Result<ExplanationSubgraph>> results(items.size(),
                                                   NotAttempted());
  std::vector<char> attempted(items.size(), 0);
  std::vector<char> resumed(items.size(), 0);
  {
    ThreadPool pool(options.num_threads);
    // One solver per worker slot would need worker ids; per-item solvers
    // are cheap relative to the explain work itself.
    pool.ParallelFor(
        items.size(),
        [&](size_t i) {
          if (cancel->cancelled()) return;
          if (options.deadline != nullptr && options.deadline->Expired()) {
            cancel->RequestCancel(
                Status::Timeout("explanation deadline expired"));
            return;
          }
          attempted[i] = 1;
          const WorkItem& item = items[i];
          if (options.checkpoint != nullptr) {
            if (const ExplanationSubgraph* saved =
                    options.checkpoint->Find(item.label, item.graph_index)) {
              resumed[i] = 1;
              results[i] = *saved;
              return;
            }
          }
          ApproxGvex solver(&model, config);
          results[i] = solver.ExplainGraph(db.graph(item.graph_index),
                                           item.graph_index, item.label);
          if (results[i].ok() && options.checkpoint != nullptr) {
            Status journal =
                options.checkpoint->Append(item.label, *results[i]);
            if (!journal.ok()) {
              // Durability is part of the contract: treat a failed append
              // as a hard item failure so the run stops instead of
              // claiming un-journaled progress.
              results[i] = journal;
            }
          }
          if (!results[i].ok() && !IsSkippableMiss(results[i].status())) {
            cancel->RequestCancel(results[i].status());
          }
        },
        cancel);
  }

  // ---- failure aggregation ---------------------------------------------------
  std::vector<std::string> failures;
  size_t not_attempted = 0;
  size_t done = 0;
  for (size_t i = 0; i < items.size(); ++i) {
    if (!attempted[i]) {
      ++not_attempted;
      continue;
    }
    if (results[i].ok() || IsSkippableMiss(results[i].status())) {
      ++done;
      continue;
    }
    failures.push_back(StrFormat("graph %zu/label %d: %s",
                                 items[i].graph_index, int(items[i].label),
                                 results[i].status().ToString().c_str()));
  }
  if (options.report != nullptr) options.report->not_attempted = not_attempted;

  const bool timed_out = options.deadline != nullptr &&
                         cancel->cancelled() &&
                         cancel->cause().IsTimeout();
  if (timed_out && failures.empty()) {
    std::string note = StrFormat(
        "explanation deadline expired: %zu/%zu graphs done, %zu outstanding",
        done, items.size(), not_attempted);
    note += options.checkpoint != nullptr
                ? "; partial progress journaled, re-run with resume"
                : "; partial progress lost (no checkpoint)";
    return Status::Timeout(std::move(note));
  }
  if (!failures.empty()) {
    constexpr size_t kMaxListed = 8;
    std::string msg = StrFormat("%zu of %zu graph explanations failed",
                                failures.size(), items.size());
    if (not_attempted > 0) {
      msg += StrFormat(" (%zu outstanding cancelled)", not_attempted);
    }
    msg += ": ";
    for (size_t i = 0; i < failures.size() && i < kMaxListed; ++i) {
      if (i > 0) msg += "; ";
      msg += failures[i];
    }
    if (failures.size() > kMaxListed) {
      msg += StrFormat("; ... %zu more", failures.size() - kMaxListed);
    }
    // The cancellation cause is the first hard failure; reuse its code so
    // callers can still dispatch on it.
    return Status(cancel->cancelled() ? cancel->cause().code()
                                      : StatusCode::kInternal,
                  std::move(msg));
  }
  if (cancel->cancelled()) {
    // Externally cancelled without an internal failure.
    Status cause = cancel->cause();
    return Status(cause.code(),
                  StrFormat("explanation cancelled after %zu/%zu graphs: %s",
                            done, items.size(), cause.message().c_str()));
  }

  // ---- assembly + per-view accounting ---------------------------------------
  ExplanationViewSet set;
  for (ClassLabel l : labels) {
    ExplanationView view;
    view.label = l;
    PerViewBuildStats stats;
    for (size_t i = 0; i < items.size(); ++i) {
      if (items[i].label != l) continue;
      ++stats.attempted;
      if (!results[i].ok()) {
        const Status& st = results[i].status();
        if (st.IsInfeasible()) {
          ++stats.infeasible;
        } else {
          ++stats.invalid;
        }
        GVEX_LOG(Warning) << "label " << l << ": graph "
                          << items[i].graph_index
                          << " contributed no subgraph: " << st.ToString();
        continue;
      }
      if (resumed[i]) ++stats.resumed;
      ++stats.explained;
      view.explainability += results[i]->explainability;
      view.subgraphs.push_back(std::move(*results[i]));
    }
    std::sort(view.subgraphs.begin(), view.subgraphs.end(),
              [](const ExplanationSubgraph& a, const ExplanationSubgraph& b) {
                return a.graph_index < b.graph_index;
              });
    std::vector<Graph> raw;
    raw.reserve(view.subgraphs.size());
    for (const auto& s : view.subgraphs) raw.push_back(s.subgraph);
    PsumResult summary = Psum(raw, config);
    view.patterns = std::move(summary.patterns);
    if (options.report != nullptr) options.report->per_view[l] = stats;
    set.views.push_back(std::move(view));
  }
  return set;
}

Result<ExplanationViewSet> ParallelApproxExplain(
    const GcnClassifier& model, const GraphDatabase& db,
    const std::vector<ClassLabel>& assigned,
    const std::vector<ClassLabel>& labels, const Configuration& config,
    size_t num_threads) {
  ParallelExplainOptions options;
  options.num_threads = num_threads;
  return ParallelApproxExplain(model, db, assigned, labels, config, options);
}

}  // namespace gvex
