// Parallel view generation (appendix A.7): the per-graph explain phase is
// embarrassingly parallel, so graphs are distributed over a thread pool and
// the per-label summarize phase runs once the subgraphs are in.
//
// The parallel driver is also the fault-tolerance front door for long
// jobs: it honors the caller's Deadline inside the fan-out, cancels
// outstanding work on the first non-recoverable error, journals each
// completed subgraph to an append-only checkpoint (and skips journaled
// graphs on resume), and aggregates *every* per-item failure into the
// returned Status instead of surfacing only the first.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "gvex/common/cancellation.h"
#include "gvex/common/result.h"
#include "gvex/common/stopwatch.h"
#include "gvex/explain/approx_gvex.h"
#include "gvex/explain/checkpoint.h"
#include "gvex/explain/config.h"
#include "gvex/explain/view.h"
#include "gvex/gnn/model.h"
#include "gvex/graph/graph_db.h"

namespace gvex {

/// Per-label accounting of what happened to each graph in the group.
/// Infeasible / invalid-argument graphs contribute no subgraph by design
/// (Alg. 1 line 17) but are counted and logged instead of vanishing.
struct PerViewBuildStats {
  size_t attempted = 0;
  size_t explained = 0;
  size_t infeasible = 0;
  size_t invalid = 0;
  size_t resumed = 0;  ///< restored from the checkpoint journal
};

struct ParallelExplainReport {
  std::map<ClassLabel, PerViewBuildStats> per_view;
  /// Work items never dispatched because the run was cancelled.
  size_t not_attempted = 0;
};

struct ParallelExplainOptions {
  size_t num_threads = 1;
  /// Checked before each per-graph solve; expiry cancels outstanding work
  /// and the call returns kTimeout with partial progress noted.
  const Deadline* deadline = nullptr;
  /// Optional external token; cancelling it stops the fan-out. A local
  /// token is used when null (errors/deadline still cancel).
  CancellationToken* cancel = nullptr;
  /// Journal of completed subgraphs for checkpoint/resume.
  ExplanationCheckpoint* checkpoint = nullptr;
  /// Filled with per-view accounting when non-null.
  ParallelExplainReport* report = nullptr;
};

/// Run ApproxGVEX's explain phase across `options.num_threads` workers,
/// then Psum per label. Equivalent output to ApproxGvex::Explain up to
/// subgraph ordering; deterministic given the configuration — a resumed
/// run therefore reproduces the uninterrupted result byte-for-byte.
Result<ExplanationViewSet> ParallelApproxExplain(
    const GcnClassifier& model, const GraphDatabase& db,
    const std::vector<ClassLabel>& assigned,
    const std::vector<ClassLabel>& labels, const Configuration& config,
    const ParallelExplainOptions& options);

/// Back-compat convenience overload.
Result<ExplanationViewSet> ParallelApproxExplain(
    const GcnClassifier& model, const GraphDatabase& db,
    const std::vector<ClassLabel>& assigned,
    const std::vector<ClassLabel>& labels, const Configuration& config,
    size_t num_threads);

}  // namespace gvex
