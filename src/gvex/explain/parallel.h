// Parallel view generation (appendix A.7): the per-graph explain phase is
// embarrassingly parallel, so graphs are distributed over a thread pool and
// the per-label summarize phase runs once the subgraphs are in.
#pragma once

#include <cstddef>
#include <vector>

#include "gvex/common/result.h"
#include "gvex/explain/approx_gvex.h"
#include "gvex/explain/config.h"
#include "gvex/explain/view.h"
#include "gvex/gnn/model.h"
#include "gvex/graph/graph_db.h"

namespace gvex {

/// Run ApproxGVEX's explain phase across `num_threads` workers, then Psum
/// per label. Equivalent output to ApproxGvex::Explain up to subgraph
/// ordering; deterministic given the configuration.
Result<ExplanationViewSet> ParallelApproxExplain(
    const GcnClassifier& model, const GraphDatabase& db,
    const std::vector<ClassLabel>& assigned,
    const std::vector<ClassLabel>& labels, const Configuration& config,
    size_t num_threads);

}  // namespace gvex
