// Query interface over explanation views — the "queryable" property of
// Table 1 as a first-class API. Supports the analyst queries of Example
// 1.1 ("which toxicophores occur in mutagens?", "which nonmutagens contain
// pattern P?") and the discriminativeness analysis behind the paper's P12
// observation (patterns that cover one label group but not another).
#pragma once

#include <cstddef>
#include <vector>

#include "gvex/explain/view.h"
#include "gvex/matching/vf2.h"

namespace gvex {

/// \brief Read-only query engine over one or more explanation views.
class ViewQuery {
 public:
  explicit ViewQuery(MatchOptions options = {}) : options_(options) {}

  /// Indices (into view.subgraphs) of explanation subgraphs containing an
  /// embedding of `pattern` ("which mutagens contain this toxicophore?").
  std::vector<size_t> SubgraphsContaining(const ExplanationView& view,
                                          const Graph& pattern) const;

  /// Number of explanation subgraphs of `view` containing `pattern`.
  size_t Support(const ExplanationView& view, const Graph& pattern) const;

  /// Patterns of `of` that match NO explanation subgraph of `against` —
  /// the substructures that discriminate the two labels (the paper's P12:
  /// "covers all mutagens but does not occur in nonmutagens").
  std::vector<Graph> DiscriminativePatterns(
      const ExplanationView& of, const ExplanationView& against) const;

  /// For every pattern of `view`, its support across the view's own
  /// subgraphs (how representative each pattern is).
  std::vector<size_t> PatternSupports(const ExplanationView& view) const;

  /// Database graphs (by index) whose explanation subgraph in `view`
  /// contains `pattern`, paired with the number of embeddings found.
  struct Hit {
    size_t graph_index;
    size_t embeddings;
  };
  std::vector<Hit> FindHits(const ExplanationView& view,
                            const Graph& pattern,
                            size_t max_embeddings_per_graph = 64) const;

 private:
  MatchOptions options_;
};

}  // namespace gvex
