// Query interface over explanation views — the "queryable" property of
// Table 1 as a first-class API. Supports the analyst queries of Example
// 1.1 ("which toxicophores occur in mutagens?", "which nonmutagens contain
// pattern P?") and the discriminativeness analysis behind the paper's P12
// observation (patterns that cover one label group but not another).
//
// Thread safety: a ViewQuery is immutable after construction and every
// method is const — concurrent queries over the same view are safe (the
// shared MatchCache is internally sharded and lock-protected), which is
// what the serving tier (gvex/serve) relies on.
#pragma once

#include <cstddef>
#include <vector>

#include "gvex/common/cancellation.h"
#include "gvex/explain/view.h"
#include "gvex/matching/vf2.h"

namespace gvex {

/// \brief Read-only query engine over one or more explanation views.
///
/// `use_cache` selects between the process-wide MatchCache (default; the
/// cache is transparent memoization, so results are identical either way)
/// and direct Vf2Matcher calls. The serving benchmark disables the cache
/// so every request performs real matching work.
///
/// Every method takes an optional CancellationToken checked between
/// per-subgraph (or per-pattern) matches: once the token flips, the loop
/// stops and the partial result accumulated so far is returned. Callers
/// that need all-or-nothing semantics (the server's deadline handling)
/// check the token after the call and discard partial results.
class ViewQuery {
 public:
  explicit ViewQuery(MatchOptions options = {}, bool use_cache = true)
      : options_(options), use_cache_(use_cache) {}

  /// Indices (into view.subgraphs) of explanation subgraphs containing an
  /// embedding of `pattern` ("which mutagens contain this toxicophore?").
  std::vector<size_t> SubgraphsContaining(
      const ExplanationView& view, const Graph& pattern,
      const CancellationToken* cancel = nullptr) const;

  /// Number of explanation subgraphs of `view` containing `pattern`.
  size_t Support(const ExplanationView& view, const Graph& pattern,
                 const CancellationToken* cancel = nullptr) const;

  /// Patterns of `of` that match NO explanation subgraph of `against` —
  /// the substructures that discriminate the two labels (the paper's P12:
  /// "covers all mutagens but does not occur in nonmutagens").
  std::vector<Graph> DiscriminativePatterns(
      const ExplanationView& of, const ExplanationView& against,
      const CancellationToken* cancel = nullptr) const;

  /// Positions (into of.patterns) of the discriminative patterns, in
  /// tier order. The sharded fleet intersects these index sets across
  /// shards: a pattern discriminates globally iff it matches no
  /// `against` subgraph on any shard, and positions — unlike the
  /// pattern graphs themselves — compare exactly even when a tier
  /// repeats isomorphic patterns (gvex/cluster/router.h).
  std::vector<size_t> DiscriminativePatternIndices(
      const ExplanationView& of, const ExplanationView& against,
      const CancellationToken* cancel = nullptr) const;

  /// For every pattern of `view`, its support across the view's own
  /// subgraphs (how representative each pattern is).
  std::vector<size_t> PatternSupports(
      const ExplanationView& view,
      const CancellationToken* cancel = nullptr) const;

  /// Database graphs (by index) whose explanation subgraph in `view`
  /// contains `pattern`, paired with the number of embeddings found.
  struct Hit {
    size_t graph_index;
    size_t embeddings;
  };
  std::vector<Hit> FindHits(const ExplanationView& view,
                            const Graph& pattern,
                            size_t max_embeddings_per_graph = 64,
                            const CancellationToken* cancel = nullptr) const;

  const MatchOptions& options() const { return options_; }

 private:
  bool Has(const Graph& pattern, const Graph& target) const;
  size_t Count(const Graph& pattern, const Graph& target,
               const MatchOptions& options) const;

  MatchOptions options_;
  bool use_cache_ = true;
};

}  // namespace gvex
