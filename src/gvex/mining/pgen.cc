#include "gvex/mining/pgen.h"

#include <algorithm>
#include <functional>
#include <set>
#include <unordered_map>

#include "gvex/common/arena.h"
#include "gvex/common/thread_pool.h"
#include "gvex/mining/canonical.h"
#include "gvex/obs/obs.h"

namespace gvex {
namespace {

// ESU extension step. `sub` is the current connected set, `ext` the legal
// extension candidates, `root` the anchor enforcing uniqueness (only nodes
// with id > root ever join). The per-step extension-set copies the
// recursion needs come from the thread's arena (one mark/rewind per
// step, so live memory is bounded by the recursion depth, not by the
// number of enumerated subgraphs); the sorted emission buffer is reused
// across emits.
struct EsuDriver {
  const Graph& g;
  Arena& arena;
  size_t min_nodes;
  size_t max_nodes;
  size_t max_enumerated;
  const std::function<bool(const std::vector<NodeId>&)>& cb;
  size_t emitted = 0;
  bool aborted = false;

  // Neighborhood-of-subgraph membership, maintained incrementally.
  std::vector<uint8_t> in_sub;
  std::vector<uint8_t> in_neighborhood;
  std::vector<NodeId> sorted_scratch;

  bool Emit(const std::vector<NodeId>& sub) {
    if (++emitted > max_enumerated) {
      aborted = true;
      return false;
    }
    if (sub.size() >= min_nodes) {
      sorted_scratch.assign(sub.begin(), sub.end());
      std::sort(sorted_scratch.begin(), sorted_scratch.end());
      if (!cb(sorted_scratch)) {
        aborted = true;
        return false;
      }
    }
    return true;
  }

  bool Extend(std::vector<NodeId>* sub, ArenaVector<NodeId>& ext,
              NodeId root) {
    if (!Emit(*sub)) return false;
    if (sub->size() == max_nodes) return true;
    while (!ext.empty()) {
      NodeId w = ext.back();
      ext.pop_back();
      bool keep_going;
      {
        ScopedArenaMark step(&arena);
        // New extension set: old ext plus exclusive neighbors of w.
        ArenaVector<NodeId> next_ext{ArenaAllocator<NodeId>(&arena)};
        next_ext.reserve(ext.size() + g.degree(w));
        next_ext.assign(ext.begin(), ext.end());
        ArenaVector<NodeId> newly_flagged{ArenaAllocator<NodeId>(&arena)};
        for (const auto& nb : g.neighbors(w)) {
          NodeId u = nb.node;
          if (u > root && !in_sub[u] && !in_neighborhood[u]) {
            next_ext.push_back(u);
            in_neighborhood[u] = true;
            newly_flagged.push_back(u);
          }
        }
        sub->push_back(w);
        in_sub[w] = true;
        keep_going = Extend(sub, next_ext, root);
        in_sub[w] = false;
        sub->pop_back();
        for (NodeId u : newly_flagged) in_neighborhood[u] = false;
      }
      if (!keep_going) return false;
    }
    return true;
  }
};

}  // namespace

bool EnumerateConnectedSubgraphs(
    const Graph& g, size_t min_nodes, size_t max_nodes, size_t max_enumerated,
    const std::function<bool(const std::vector<NodeId>&)>& cb) {
  if (g.num_nodes() == 0 || max_nodes == 0) return true;
  Arena& arena = arena::ThreadLocal();
  ScopedArenaMark run_mark(&arena);
  EsuDriver driver{g,
                   arena,
                   min_nodes,
                   max_nodes,
                   max_enumerated == 0 ? static_cast<size_t>(-1)
                                       : max_enumerated,
                   cb};
  driver.in_sub.assign(g.num_nodes(), 0);
  driver.in_neighborhood.assign(g.num_nodes(), 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    bool keep_going;
    {
      ScopedArenaMark root_mark(&arena);
      ArenaVector<NodeId> ext{ArenaAllocator<NodeId>(&arena)};
      ArenaVector<NodeId> flagged{ArenaAllocator<NodeId>(&arena)};
      for (const auto& nb : g.neighbors(v)) {
        if (nb.node > v && !driver.in_neighborhood[nb.node]) {
          ext.push_back(nb.node);
          driver.in_neighborhood[nb.node] = true;
          flagged.push_back(nb.node);
        }
      }
      std::vector<NodeId> sub{v};
      driver.in_sub[v] = true;
      keep_going = driver.Extend(&sub, ext, v);
      driver.in_sub[v] = false;
      for (NodeId u : flagged) driver.in_neighborhood[u] = false;
    }
    if (!keep_going) {
      GVEX_COUNTER_ADD("pgen.enumerated", driver.emitted);
      return !driver.aborted;
    }
  }
  GVEX_COUNTER_ADD("pgen.enumerated", driver.emitted);
  return !driver.aborted;
}

Graph ToPattern(const Graph& g) {
  Graph p(g.directed());
  for (NodeId v = 0; v < g.num_nodes(); ++v) p.AddNode(g.node_type(v));
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const auto& nb : g.neighbors(u)) {
      if (!g.directed() && nb.node < u) continue;
      Status st = p.AddEdge(u, nb.node, nb.edge_type);
      (void)st;
    }
  }
  return p;
}

std::vector<PatternCandidate> GeneratePatternCandidates(
    const std::vector<Graph>& subgraphs, const PgenOptions& options) {
  GVEX_SPAN("pgen.generate");
  GVEX_COUNTER_INC("pgen.calls");
  struct Entry {
    PatternCandidate candidate;
    std::set<size_t> sources;
  };
  std::unordered_map<std::string, Entry> by_code;

  // Per-graph ESU enumeration + canonicalization is independent across
  // graphs, so it fans out over the shared pool into per-graph maps. The
  // merge below runs serially in ascending gi order, which reproduces the
  // serial loop exactly: embedding sums and source sets are
  // order-independent, and the first occurrence in gi order supplies the
  // representative pattern for each canonical code.
  struct LocalMined {
    std::unordered_map<std::string, Entry> by_code;
  };
  std::vector<LocalMined> mined(subgraphs.size());
  ThreadPool::Shared().ParallelFor(subgraphs.size(), [&](size_t gi) {
    const Graph& g = subgraphs[gi];
    std::unordered_map<std::string, Entry>& local = mined[gi].by_code;
    EnumerateConnectedSubgraphs(
        g, options.min_pattern_nodes, options.max_pattern_nodes,
        options.max_enumerated_per_graph,
        [&](const std::vector<NodeId>& nodes) {
          Graph piece = ToPattern(g.InducedSubgraph(nodes));
          std::string code = CanonicalCode(piece);
          auto it = local.find(code);
          if (it == local.end()) {
            Entry e;
            e.candidate.pattern = std::move(piece);
            e.candidate.canonical = code;
            e.candidate.embeddings = 1;
            e.sources.insert(gi);
            local.emplace(std::move(code), std::move(e));
          } else {
            it->second.candidate.embeddings += 1;
          }
          return true;
        });
  });
  for (size_t gi = 0; gi < subgraphs.size(); ++gi) {
    for (auto& [code, entry] : mined[gi].by_code) {
      auto it = by_code.find(code);
      if (it == by_code.end()) {
        by_code.emplace(code, std::move(entry));
      } else {
        it->second.candidate.embeddings += entry.candidate.embeddings;
        it->second.sources.insert(gi);
      }
    }
  }

  std::vector<PatternCandidate> out;
  out.reserve(by_code.size());
  for (auto& [code, entry] : by_code) {
    PatternCandidate c = std::move(entry.candidate);
    c.support = entry.sources.size();
    // MDL-style compression gain: re-encoding (embeddings - 1) occurrences
    // by a pointer to the pattern saves ~(nodes + edges) symbols each,
    // minus the one-time cost of describing the pattern itself.
    const double size_cost = static_cast<double>(c.pattern.num_nodes() +
                                                 c.pattern.num_edges());
    c.mdl_score =
        (static_cast<double>(c.embeddings) - 1.0) * size_cost - size_cost;
    out.push_back(std::move(c));
  }
  std::sort(out.begin(), out.end(),
            [](const PatternCandidate& a, const PatternCandidate& b) {
              if (a.mdl_score != b.mdl_score) return a.mdl_score > b.mdl_score;
              if (a.embeddings != b.embeddings) return a.embeddings > b.embeddings;
              return a.canonical < b.canonical;  // deterministic tie-break
            });
  if (options.max_candidates > 0 && out.size() > options.max_candidates) {
    out.resize(options.max_candidates);
  }
  return out;
}

std::vector<PatternCandidate> GenerateLocalPatternCandidates(
    const Graph& g, NodeId v, unsigned hops, const PgenOptions& options) {
  std::vector<NodeId> hood = g.KHopNeighborhood(v, hops);
  Graph local = g.InducedSubgraph(hood);
  return GeneratePatternCandidates({local}, options);
}

}  // namespace gvex
