// Canonical forms for small graph patterns.
//
// Pattern mining repeatedly asks "have I seen this (sub)graph up to
// isomorphism?". Patterns here are small (the paper bounds them by the
// coverage budget u_l and in practice a handful of nodes), so an exact
// minimum-code canonicalization over node permutations — with
// type/degree-class pruning — is both correct and fast enough.
#pragma once

#include <string>

#include "gvex/graph/graph.h"

namespace gvex {

/// \brief Canonical string code of a graph: equal codes <=> isomorphic
/// (including node/edge types). Intended for graphs of <= ~10 nodes;
/// cost grows factorially in the largest same-(type,degree) class.
std::string CanonicalCode(const Graph& g);

/// True iff a and b are isomorphic, via canonical codes.
bool AreIsomorphic(const Graph& a, const Graph& b);

}  // namespace gvex
