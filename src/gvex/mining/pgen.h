// PGen: the pattern-candidate generator of §4.
//
// Enumerates connected node-induced subgraphs of the explanation subgraphs
// (ESU / FANMOD-style, each connected node set visited exactly once),
// deduplicates them up to isomorphism via canonical codes, counts support
// and embeddings, and ranks candidates by an MDL-style compression gain
// — patterns that re-occur often and carry more structure rank higher.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "gvex/graph/graph.h"

namespace gvex {

struct PgenOptions {
  size_t min_pattern_nodes = 1;
  size_t max_pattern_nodes = 5;
  /// Keep at most this many top-ranked candidates (0 = all).
  size_t max_candidates = 64;
  /// Abort enumeration within one source graph beyond this many connected
  /// subgraphs (guards dense pathological inputs).
  size_t max_enumerated_per_graph = 20000;
};

/// \brief A mined pattern with its occurrence statistics.
struct PatternCandidate {
  Graph pattern;            // types + edges only, no features
  std::string canonical;    // canonical code (dedup key)
  size_t support = 0;       // #input graphs containing >= 1 embedding
  size_t embeddings = 0;    // total embeddings across inputs
  double mdl_score = 0.0;   // compression gain; higher is better
};

/// Enumerate every connected node-induced subgraph of `g` with size in
/// [min_nodes, max_nodes], invoking `cb` with the (sorted) node set.
/// Returns false if the per-graph enumeration cap was hit.
bool EnumerateConnectedSubgraphs(
    const Graph& g, size_t min_nodes, size_t max_nodes, size_t max_enumerated,
    const std::function<bool(const std::vector<NodeId>&)>& cb);

/// PGen over a set of explanation subgraphs.
std::vector<PatternCandidate> GeneratePatternCandidates(
    const std::vector<Graph>& subgraphs, const PgenOptions& options = {});

/// IncPGen (§5): pattern candidates from the r-hop neighborhood of node `v`
/// within `g` — the streaming algorithm's localized mining step.
std::vector<PatternCandidate> GenerateLocalPatternCandidates(
    const Graph& g, NodeId v, unsigned hops, const PgenOptions& options = {});

/// Strip features from a graph, keeping types and edges (patterns carry
/// no feature payload).
Graph ToPattern(const Graph& g);

}  // namespace gvex
