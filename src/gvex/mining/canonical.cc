#include "gvex/mining/canonical.h"

#include <algorithm>
#include <functional>
#include <cassert>
#include <numeric>

#include "gvex/common/string_util.h"

namespace gvex {
namespace {

// Encode the graph under a specific node order as a compact string:
// node types in order, then the upper-triangle adjacency with edge types.
std::string EncodeUnderPermutation(const Graph& g,
                                   const std::vector<NodeId>& perm) {
  const size_t n = g.num_nodes();
  std::string code;
  code.reserve(n * 3 + n * n);
  for (NodeId v : perm) {
    code += std::to_string(g.node_type(v));
    code += ',';
  }
  code += '|';
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (g.HasEdge(perm[i], perm[j])) {
        code += std::to_string(g.GetEdgeType(perm[i], perm[j]) + 1);
      } else {
        code += '0';
      }
      code += ';';
    }
  }
  return code;
}

}  // namespace

std::string CanonicalCode(const Graph& g) {
  const size_t n = g.num_nodes();
  if (n == 0) return "empty";

  // Order nodes by (type, degree) to shrink the permutation space: only
  // permutations that respect this sort order can be minimal, because the
  // type prefix of the code is compared first.
  std::vector<NodeId> base(n);
  std::iota(base.begin(), base.end(), 0);
  auto cls = [&](NodeId v) {
    return std::make_pair(g.node_type(v), g.degree(v));
  };
  std::sort(base.begin(), base.end(),
            [&](NodeId a, NodeId b) { return cls(a) < cls(b); });

  // Enumerate permutations within equivalence classes of equal (type,
  // degree); across classes the order is fixed by the sort.
  std::string best;
  std::vector<NodeId> perm = base;
  // Identify class boundaries.
  std::vector<std::pair<size_t, size_t>> classes;
  size_t start = 0;
  for (size_t i = 1; i <= n; ++i) {
    if (i == n || cls(base[i]) != cls(base[start])) {
      classes.emplace_back(start, i);
      start = i;
    }
  }
  // Recursive product of per-class permutations.
  std::function<void(size_t)> recurse = [&](size_t ci) {
    if (ci == classes.size()) {
      std::string code = EncodeUnderPermutation(g, perm);
      if (best.empty() || code < best) best = std::move(code);
      return;
    }
    auto [lo, hi] = classes[ci];
    std::vector<NodeId> segment(perm.begin() + lo, perm.begin() + hi);
    std::sort(segment.begin(), segment.end());
    do {
      std::copy(segment.begin(), segment.end(), perm.begin() + lo);
      recurse(ci + 1);
    } while (std::next_permutation(segment.begin(), segment.end()));
  };
  recurse(0);
  return best;
}

bool AreIsomorphic(const Graph& a, const Graph& b) {
  if (a.num_nodes() != b.num_nodes() || a.num_edges() != b.num_edges()) {
    return false;
  }
  if (a.StructureSignature() != b.StructureSignature()) return false;
  return CanonicalCode(a) == CanonicalCode(b);
}

}  // namespace gvex
