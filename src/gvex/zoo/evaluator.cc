#include "gvex/zoo/evaluator.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "gvex/common/io_util.h"
#include "gvex/common/stopwatch.h"
#include "gvex/metrics/metrics.h"
#include "gvex/zoo/factory.h"

namespace gvex {
namespace zoo {
namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

// Minimal strict cursor over the canonical scorecard line.
struct Cursor {
  const std::string& s;
  size_t pos = 0;

  bool Literal(const std::string& lit) {
    if (s.compare(pos, lit.size(), lit) != 0) return false;
    pos += lit.size();
    return true;
  }

  bool QuotedString(std::string* out) {
    if (pos >= s.size() || s[pos] != '"') return false;
    ++pos;
    out->clear();
    while (pos < s.size() && s[pos] != '"') {
      if (s[pos] == '\\') {
        ++pos;
        if (pos >= s.size()) return false;
      }
      out->push_back(s[pos++]);
    }
    if (pos >= s.size()) return false;
    ++pos;  // closing quote
    return true;
  }

  bool Number(double* out) {
    const char* begin = s.c_str() + pos;
    char* end = nullptr;
    double v = std::strtod(begin, &end);
    if (end == begin) return false;
    pos += static_cast<size_t>(end - begin);
    *out = v;
    return true;
  }

  bool Unsigned(uint64_t* out) {
    const char* begin = s.c_str() + pos;
    char* end = nullptr;
    unsigned long long v = std::strtoull(begin, &end, 10);
    if (end == begin) return false;
    pos += static_cast<size_t>(end - begin);
    *out = v;
    return true;
  }
};

}  // namespace

Result<EvalSpec> ParseEvalSpec(const std::string& text) {
  EvalSpec spec;
  std::istringstream in(text);
  std::string token;
  while (in >> token) {
    size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("eval spec: expected key=value, got: " +
                                     token);
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (value.empty()) {
      return Status::InvalidArgument("eval spec: empty value for " + key);
    }
    char* end = nullptr;
    if (key == "dataset") {
      spec.dataset = value;
    } else if (key == "scale") {
      spec.scale = std::strtod(value.c_str(), &end);
      if (end == nullptr || *end != '\0') {
        return Status::InvalidArgument("eval spec: bad scale: " + value);
      }
    } else if (key == "seed") {
      spec.seed = std::strtoull(value.c_str(), &end, 10);
      if (end == nullptr || *end != '\0') {
        return Status::InvalidArgument("eval spec: bad seed: " + value);
      }
    } else if (key == "graphs") {
      spec.graphs = std::strtoull(value.c_str(), &end, 10);
      if (end == nullptr || *end != '\0') {
        return Status::InvalidArgument("eval spec: bad graphs: " + value);
      }
    } else {
      return Status::InvalidArgument("eval spec: unknown key: " + key);
    }
  }
  if (spec.scale <= 0.0 || spec.scale > 1.0) {
    return Status::InvalidArgument("eval spec: scale must be in (0, 1]");
  }
  return spec;
}

std::string EvalSpecToString(const EvalSpec& spec) {
  std::ostringstream out;
  SetMaxPrecision(&out);
  out << "dataset=" << spec.dataset << " scale=" << spec.scale
      << " seed=" << spec.seed << " graphs=" << spec.graphs;
  return out.str();
}

std::string ScorecardToJson(const Scorecard& card) {
  std::ostringstream out;
  SetMaxPrecision(&out);
  out << "{\"scorecard\":\"" << kScorecardMarker << "\""
      << ",\"route\":\"" << JsonEscape(card.route) << "\""
      << ",\"kind\":\"" << JsonEscape(card.kind) << "\""
      << ",\"dataset\":\"" << JsonEscape(card.dataset) << "\""
      << ",\"scale\":" << card.scale << ",\"seed\":" << card.seed
      << ",\"graphs\":" << card.graphs
      << ",\"fidelity_plus\":" << card.fidelity_plus
      << ",\"fidelity_minus\":" << card.fidelity_minus
      << ",\"sparsity\":" << card.sparsity
      << ",\"accuracy\":" << card.accuracy << "}";
  return out.str();
}

Result<Scorecard> ScorecardFromJson(const std::string& json) {
  Cursor c{json};
  Scorecard card;
  std::string marker;
  double scale = 0.0;
  auto fail = [&](const char* where) {
    return Status::InvalidArgument(std::string("scorecard: malformed near ") +
                                   where);
  };
  if (!c.Literal("{\"scorecard\":") || !c.QuotedString(&marker)) {
    return fail("scorecard");
  }
  if (marker != kScorecardMarker) {
    return Status::InvalidArgument("scorecard: unknown marker: " + marker);
  }
  if (!c.Literal(",\"route\":") || !c.QuotedString(&card.route)) {
    return fail("route");
  }
  if (!c.Literal(",\"kind\":") || !c.QuotedString(&card.kind)) {
    return fail("kind");
  }
  if (!c.Literal(",\"dataset\":") || !c.QuotedString(&card.dataset)) {
    return fail("dataset");
  }
  if (!c.Literal(",\"scale\":") || !c.Number(&scale)) return fail("scale");
  card.scale = scale;
  if (!c.Literal(",\"seed\":") || !c.Unsigned(&card.seed)) return fail("seed");
  if (!c.Literal(",\"graphs\":") || !c.Unsigned(&card.graphs)) {
    return fail("graphs");
  }
  if (!c.Literal(",\"fidelity_plus\":") || !c.Number(&card.fidelity_plus)) {
    return fail("fidelity_plus");
  }
  if (!c.Literal(",\"fidelity_minus\":") || !c.Number(&card.fidelity_minus)) {
    return fail("fidelity_minus");
  }
  if (!c.Literal(",\"sparsity\":") || !c.Number(&card.sparsity)) {
    return fail("sparsity");
  }
  if (!c.Literal(",\"accuracy\":") || !c.Number(&card.accuracy)) {
    return fail("accuracy");
  }
  if (!c.Literal("}") || c.pos != json.size()) return fail("end");
  return card;
}

std::string GraphScoreRow(const GraphScore& row) {
  std::ostringstream out;
  out << "graph " << row.graph_index << " label " << row.label << " nodes "
      << row.explanation_nodes << " truth " << row.truth_nodes
      << " recovered " << row.recovered;
  return out.str();
}

Result<Scorecard> EvaluateRoute(const ExplainerRouteConfig& config,
                                const GcnClassifier& model,
                                const EvalSpec& spec,
                                const CancellationToken* cancel,
                                std::vector<GraphScore>* rows) {
  GVEX_RETURN_NOT_OK(ValidateRouteConfig(config));
  datasets::MotifTruth truth;
  GVEX_ASSIGN_OR_RETURN(
      GraphDatabase db,
      datasets::MakeByNameWithTruth(spec.dataset, spec.scale, spec.seed,
                                    &truth));
  std::unique_ptr<Explainer> explainer = MakeExplainer(config, &model);
  if (explainer == nullptr) {
    return Status::Internal("zoo factory returned no explainer");
  }

  size_t limit = db.size();
  if (spec.graphs != 0) limit = std::min<size_t>(limit, spec.graphs);

  Stopwatch watch;
  std::vector<GraphExplanation> explanations;
  double accuracy_sum = 0.0;
  size_t accuracy_graphs = 0;
  size_t scored = 0;
  for (size_t gi = 0; gi < limit; ++gi) {
    if (cancel != nullptr && cancel->cancelled()) {
      Status cause = cancel->cause();
      return cause.ok() ? Status::Timeout("evaluation cancelled") : cause;
    }
    if (config.budget_ms != 0 &&
        watch.ElapsedSeconds() * 1000.0 >=
            static_cast<double>(config.budget_ms)) {
      break;  // partial scorecard over the graphs scored so far
    }
    const Graph& g = db.graph(gi);
    ClassLabel label = model.Predict(g);
    auto nodes = explainer->ExplainGraph(g, label,
                                         static_cast<size_t>(config.max_nodes),
                                         cancel);
    if (!nodes.ok()) {
      if (cancel != nullptr && cancel->cancelled()) return nodes.status();
      continue;  // infeasible graph: skipped, like the bench adapters
    }
    GraphScore row;
    row.graph_index = gi;
    row.label = label;
    row.explanation_nodes = nodes->size();
    static const std::vector<NodeId> kNoTruth;
    const std::vector<NodeId>& planted =
        gi < truth.nodes.size() ? truth.nodes[gi] : kNoTruth;
    row.truth_nodes = planted.size();
    for (NodeId v : *nodes) {
      if (std::binary_search(planted.begin(), planted.end(), v)) {
        ++row.recovered;
      }
    }
    if (!planted.empty()) {
      accuracy_sum += static_cast<double>(row.recovered) /
                      static_cast<double>(planted.size());
      ++accuracy_graphs;
    }
    explanations.push_back({gi, std::move(*nodes)});
    if (rows != nullptr) rows->push_back(row);
    ++scored;
  }

  FidelityReport fidelity = EvaluateFidelity(model, db, explanations);
  Scorecard card;
  card.route = config.route;
  card.kind = KindName(config.kind);
  card.dataset = spec.dataset;
  card.scale = spec.scale;
  card.seed = spec.seed;
  card.graphs = scored;
  card.fidelity_plus = fidelity.fidelity_plus;
  card.fidelity_minus = fidelity.fidelity_minus;
  card.sparsity = fidelity.sparsity;
  card.accuracy =
      accuracy_graphs == 0 ? 0.0 : accuracy_sum / static_cast<double>(accuracy_graphs);
  return card;
}

}  // namespace zoo
}  // namespace gvex
