// Explainer factory (gvex::zoo): seed-deterministic construction of the
// five zoo explainers behind the shared Explainer interface. Every
// explainer built here derives its randomness from the route config's
// seed alone and keeps no mutable state across ExplainGraph calls, so a
// route's answers are byte-identical across runs and across concurrent
// worker threads.
#pragma once

#include <memory>

#include "gvex/baselines/explainer.h"
#include "gvex/zoo/route_config.h"

namespace gvex {
namespace zoo {

/// Build the explainer for `config` over `model`. A zero seed keeps each
/// kind's published default (GE 11, SX 13, GX 17, GCF 19); any other
/// value overrides it. The returned explainer borrows `model` — the
/// caller keeps it alive — and is safe to call from multiple threads
/// concurrently (each ExplainGraph seeds a fresh local RNG).
std::unique_ptr<Explainer> MakeExplainer(const ExplainerRouteConfig& config,
                                         const GcnClassifier* model);

/// ApproxGVEX (Algorithm 1) behind the instance-level Explainer
/// interface: one greedy explain per graph with coverage [0, max_nodes],
/// no summarize phase. Deterministic — ApproxGVEX's greedy selection
/// consumes no randomness — and stateless across calls (a fresh solver
/// per ExplainGraph), so it meets the same thread-safety contract as the
/// baselines. Cancellation is observed once per call, before the greedy
/// walk starts.
class GvexZooExplainer : public Explainer {
 public:
  explicit GvexZooExplainer(const GcnClassifier* model) : model_(model) {}

  std::string name() const override { return "GVEX"; }

  Result<std::vector<NodeId>> ExplainGraph(
      const Graph& g, ClassLabel label, size_t max_nodes,
      const CancellationToken* cancel = nullptr) override;

 private:
  const GcnClassifier* model_;
};

}  // namespace zoo
}  // namespace gvex
