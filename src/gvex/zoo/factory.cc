#include "gvex/zoo/factory.h"

#include <algorithm>

#include "gvex/baselines/gcf_explainer.h"
#include "gvex/baselines/gnn_explainer.h"
#include "gvex/baselines/gstarx.h"
#include "gvex/baselines/subgraphx.h"
#include "gvex/explain/approx_gvex.h"

namespace gvex {
namespace zoo {

Result<std::vector<NodeId>> GvexZooExplainer::ExplainGraph(
    const Graph& g, ClassLabel label, size_t max_nodes,
    const CancellationToken* cancel) {
  if (cancel != nullptr && cancel->cancelled()) {
    Status cause = cancel->cause();
    return cause.ok() ? Status::Timeout("explain cancelled") : cause;
  }
  Configuration config;
  config.theta = 0.08f;
  config.radius = 0.25f;
  config.gamma = 0.5f;
  config.default_coverage = {0, max_nodes};
  ApproxGvex solver(model_, config);
  Result<ExplanationSubgraph> sub = solver.ExplainGraph(g, 0, label);
  if (!sub.ok() && sub.status().code() == StatusCode::kInfeasible) {
    // A tight node budget can leave no consistent+counterfactual witness.
    // Relax the coverage bound once and trim — a served route must still
    // answer with its best node set, not an error.
    config.default_coverage = {0, std::min<size_t>(g.num_nodes(),
                                                   2 * max_nodes + 1)};
    ApproxGvex relaxed(model_, config);
    sub = relaxed.ExplainGraph(g, 0, label);
  }
  GVEX_RETURN_NOT_OK(sub.status());
  std::vector<NodeId> nodes = std::move(sub->nodes);
  if (nodes.size() > max_nodes) nodes.resize(max_nodes);
  return nodes;
}

std::unique_ptr<Explainer> MakeExplainer(const ExplainerRouteConfig& config,
                                         const GcnClassifier* model) {
  switch (config.kind) {
    case ExplainerKind::kGnnExplainer: {
      GnnExplainerOptions o;
      if (config.seed != 0) o.seed = config.seed;
      return std::make_unique<GnnExplainer>(model, o);
    }
    case ExplainerKind::kSubgraphX: {
      SubgraphXOptions o;
      if (config.seed != 0) o.seed = config.seed;
      return std::make_unique<SubgraphX>(model, o);
    }
    case ExplainerKind::kGStarX: {
      GStarXOptions o;
      if (config.seed != 0) o.seed = config.seed;
      return std::make_unique<GStarX>(model, o);
    }
    case ExplainerKind::kGcf: {
      GcfOptions o;
      if (config.seed != 0) o.seed = config.seed;
      return std::make_unique<GcfExplainer>(model, o);
    }
    case ExplainerKind::kGvex:
      return std::make_unique<GvexZooExplainer>(model);
  }
  return nullptr;
}

}  // namespace zoo
}  // namespace gvex
