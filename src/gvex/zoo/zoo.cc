#include "gvex/zoo/zoo.h"

#include <fstream>
#include <sstream>

#include "gvex/obs/obs.h"

namespace gvex {
namespace zoo {
namespace {

serve::Response ErrorResponse(const serve::Request& req, const Status& st) {
  serve::Response resp;
  resp.id = req.id;
  resp.code = st.code();
  resp.message = st.message();
  return resp;
}

// Per-route score histograms want dynamic names, which the GVEX_*
// macros' cached-static lookup cannot provide.
void RecordScoreHistograms(const Scorecard& card) {
  if (!obs::Enabled()) return;
  auto bp = [](double v) {
    if (v < 0.0) v = 0.0;
    return static_cast<uint64_t>(v * 10000.0);
  };
  obs::Registry::Global()
      .GetHistogram("zoo.fidelity_plus_bp." + card.route)
      .Record(bp(card.fidelity_plus));
  obs::Registry::Global()
      .GetHistogram("zoo.accuracy_bp." + card.route)
      .Record(bp(card.accuracy));
}

}  // namespace

Status ZooManager::Configure(std::vector<ExplainerRouteConfig> configs) {
  std::map<std::string, ExplainerRouteConfig> table;
  for (auto& c : configs) {
    GVEX_RETURN_NOT_OK(ValidateRouteConfig(c));
    if (!table.emplace(c.route, std::move(c)).second) {
      return Status::InvalidArgument("zoo: duplicate route in config set");
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  routes_ = std::move(table);
  return Status::OK();
}

Status ZooManager::ConfigureFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("zoo: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  GVEX_ASSIGN_OR_RETURN(std::vector<ExplainerRouteConfig> configs,
                        ParseZooArtifact(buf.str()));
  return Configure(std::move(configs));
}

Result<ExplainerRouteConfig> ZooManager::ConfigFor(
    const std::string& route) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = routes_.find(route);
  if (it == routes_.end()) {
    return Status::NotFound("zoo: no explainer bound to route '" + route +
                            "'");
  }
  return it->second;
}

std::vector<ExplainerRouteConfig> ZooManager::Configs() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ExplainerRouteConfig> out;
  out.reserve(routes_.size());
  for (const auto& [_, c] : routes_) out.push_back(c);
  return out;
}

serve::Response ZooManager::Handle(const serve::Request& req,
                                   const CancellationToken* cancel) {
  // Form 1: install a gvexzoo-v1 artifact (publish --zoo's wire path).
  if (IsZooArtifact(req.text)) {
    auto configs = ParseZooArtifact(req.text);
    if (!configs.ok()) return ErrorResponse(req, configs.status());
    const size_t count = configs->size();
    Status installed = Configure(std::move(*configs));
    if (!installed.ok()) return ErrorResponse(req, installed);
    GVEX_COUNTER_INC("zoo.installs");
    serve::Response resp;
    resp.id = req.id;
    resp.text = "installed " + std::to_string(count) + " zoo routes";
    return resp;
  }

  // Form 2: list the configured bindings.
  if (req.text == "status") {
    serve::Response resp;
    resp.id = req.id;
    std::ostringstream out;
    for (const auto& c : Configs()) {
      out << "route " << c.route << " kind " << KindName(c.kind) << " seed "
          << c.seed << " budget_ms " << c.budget_ms << " max_nodes "
          << c.max_nodes << "\n";
    }
    resp.text = out.str();
    return resp;
  }

  // Form 3: evaluate `route` against the spec in text.
  auto config = ConfigFor(req.route.empty() ? std::string("default")
                                            : req.route);
  if (!config.ok()) {
    GVEX_COUNTER_INC("zoo.eval_failures");
    return ErrorResponse(req, config.status());
  }
  auto spec = ParseEvalSpec(req.text);
  if (!spec.ok()) {
    GVEX_COUNTER_INC("zoo.eval_failures");
    return ErrorResponse(req, spec.status());
  }
  // Prefer the zoo route's own served model; fall back to the default
  // route's so many explainer routes can A/B one published model.
  std::shared_ptr<const serve::LoadedViewSet> snapshot =
      registry_ == nullptr ? nullptr : registry_->Snapshot(config->route);
  if ((snapshot == nullptr || snapshot->model == nullptr) &&
      registry_ != nullptr) {
    snapshot = registry_->Snapshot(cluster::kDefaultRoute);
  }
  if (snapshot == nullptr || snapshot->model == nullptr) {
    GVEX_COUNTER_INC("zoo.eval_failures");
    return ErrorResponse(
        req, Status::FailedPrecondition(
                 "zoo: route '" + config->route +
                 "' has no served model (publish one first)"));
  }
  std::vector<GraphScore> rows;
  auto card = EvaluateRoute(*config, *snapshot->model, *spec, cancel, &rows);
  if (!card.ok()) {
    GVEX_COUNTER_INC("zoo.eval_failures");
    return ErrorResponse(req, card.status());
  }
  GVEX_COUNTER_INC("zoo.evaluations");
  GVEX_COUNTER_ADD("zoo.graphs_scored", card->graphs);
  RecordScoreHistograms(*card);
  serve::Response resp;
  resp.id = req.id;
  std::ostringstream out;
  for (const auto& row : rows) out << GraphScoreRow(row) << "\n";
  out << ScorecardToJson(*card) << "\n";
  resp.text = out.str();
  return resp;
}

}  // namespace zoo
}  // namespace gvex
