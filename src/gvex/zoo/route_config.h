// Explainer-zoo route configs (gvex::zoo): the binding from one named
// serve route to one explainer configuration. The five kinds are the four
// paper baselines (GE, SX, GX, GCF) plus GVEX itself; each binding pins
// the seed, per-evaluation time budget, and explanation size so a route's
// answers are reproducible byte-for-byte.
//
// Bindings travel as a `gvexzoo-v1` text artifact — the same
// line-oriented, strict-ordered style as the other v1 formats — so they
// can sit in a file next to a bundle, ride the wire inside a kEvaluate
// request, and fan out across a fleet with `publish --zoo`:
//
//   gvexzoo-v1
//   route <name> kind <GE|SX|GX|GCF|GVEX> seed <u64> budget_ms <u64> max_nodes <u64>
//   ...
//   end
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gvex/common/result.h"

namespace gvex {
namespace zoo {

/// The artifact magic / first line.
inline constexpr char kZooArtifactMagic[] = "gvexzoo-v1";

/// Which explainer a route serves.
enum class ExplainerKind : uint8_t {
  kGnnExplainer = 0,  ///< "GE"  — learned edge masks
  kSubgraphX = 1,     ///< "SX"  — MCTS + sampled Shapley
  kGStarX = 2,        ///< "GX"  — structure-aware game values
  kGcf = 3,           ///< "GCF" — greedy counterfactual deletion
  kGvex = 4,          ///< "GVEX" — ApproxGVEX (Algorithm 1)
};

/// Short code used in artifacts and scorecards ("GE", ..., "GVEX").
const char* KindName(ExplainerKind kind);

/// Inverse of KindName; kInvalidArgument for unknown codes.
Result<ExplainerKind> KindFromName(const std::string& name);

/// One route binding.
struct ExplainerRouteConfig {
  std::string route;
  ExplainerKind kind = ExplainerKind::kGnnExplainer;
  uint64_t seed = 0;        ///< explainer RNG seed (0 = the kind's default)
  uint64_t budget_ms = 0;   ///< per-evaluation wall budget (0 = unbounded)
  uint64_t max_nodes = 6;   ///< explanation size cap per graph

  bool operator==(const ExplainerRouteConfig&) const = default;
};

/// Reject unusable bindings: empty route names, names with whitespace
/// (they must survive space-delimited text formats), zero max_nodes.
Status ValidateRouteConfig(const ExplainerRouteConfig& config);

/// Encode bindings as a gvexzoo-v1 artifact (canonical: one line per
/// route, input order preserved, trailing newline after "end").
std::string EncodeZooArtifact(const std::vector<ExplainerRouteConfig>& configs);

/// Parse and validate a gvexzoo-v1 artifact. Strict: unknown keys,
/// missing fields, duplicate route names, and a missing "end" terminator
/// all fail with kInvalidArgument.
Result<std::vector<ExplainerRouteConfig>> ParseZooArtifact(
    const std::string& text);

/// True when `text` begins with the artifact magic — how the kEvaluate
/// handler tells an install apart from an evaluation spec.
bool IsZooArtifact(const std::string& text);

}  // namespace zoo
}  // namespace gvex
