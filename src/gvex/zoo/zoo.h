// ZooManager (gvex::zoo): the explainer zoo behind serve routes. Holds
// the route → explainer-config table and answers kEvaluate requests,
// dispatched to it by the ExplanationServer's EvaluateHandler hook — so
// every evaluation rides the shared query queue and inherits admission,
// route quotas, deadlines, micro-batching, and cancellation unchanged.
//
// Three request forms share the kEvaluate wire type, told apart by the
// request text (the v1 evolution rule forbids new request fields):
//   * text = gvexzoo-v1 artifact  → replace the route-config table
//     (what `publish --zoo` sends to every target);
//   * text = "status"             → list configured zoo routes;
//   * anything else               → evaluate `route` against the eval
//     spec in text (empty = defaults); the response text streams
//     per-graph rows followed by the canonical scorecard JSON line.
//
// The model an evaluation explains with is the route's *served* model —
// the live ViewRegistry generation — so publish/fan-out and replication
// decide what the zoo scores, exactly like every other read. A zoo
// route with no model of its own falls back to the default route's, so
// several explainer routes can A/B one published model.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "gvex/common/cancellation.h"
#include "gvex/serve/protocol.h"
#include "gvex/serve/view_registry.h"
#include "gvex/zoo/evaluator.h"
#include "gvex/zoo/route_config.h"

namespace gvex {
namespace zoo {

class ZooManager {
 public:
  /// `registry` supplies the served model per route; borrowed, must
  /// outlive the manager.
  explicit ZooManager(const serve::ViewRegistry* registry)
      : registry_(registry) {}

  /// Replace the whole route-config table (validated all-or-nothing).
  Status Configure(std::vector<ExplainerRouteConfig> configs);

  /// Read a gvexzoo-v1 artifact file and Configure from it.
  Status ConfigureFromFile(const std::string& path);

  /// The binding for `route`; kNotFound when none.
  Result<ExplainerRouteConfig> ConfigFor(const std::string& route) const;

  /// All configured bindings, sorted by route name.
  std::vector<ExplainerRouteConfig> Configs() const;

  /// Answer one kEvaluate request (install / status / evaluate). This is
  /// what `ExplanationServer::SetEvaluateHandler` is wired to; it runs on
  /// a worker thread and honors `cancel` between graphs.
  serve::Response Handle(const serve::Request& req,
                         const CancellationToken* cancel);

 private:
  const serve::ViewRegistry* registry_;
  mutable std::mutex mu_;
  std::map<std::string, ExplainerRouteConfig> routes_;
};

}  // namespace zoo
}  // namespace gvex
