// Served evaluation (gvex::zoo): score one zoo route's explainer against
// planted-motif ground truth from the dataset generators. The result is a
// canonical one-line scorecard JSON ("zoo-scorecard-v1") whose encoding
// is byte-stable — the acceptance contract is that evaluating a served
// route over the wire reproduces the direct in-process scorecard
// byte-identically — plus streamed per-graph rows for operators.
//
// Metrics: fidelity+ / fidelity- / sparsity from gvex/metrics (Eqs. 8-10,
// scored against the model's own predictions), and motif-recovery
// accuracy — the mean fraction of planted motif nodes the explanation
// recovers, the signal the evaluation gate trips on.
#pragma once

#include <string>
#include <vector>

#include "gvex/common/cancellation.h"
#include "gvex/common/result.h"
#include "gvex/datasets/datasets.h"
#include "gvex/gnn/model.h"
#include "gvex/zoo/route_config.h"

namespace gvex {
namespace zoo {

/// The scorecard marker / JSON "scorecard" field value.
inline constexpr char kScorecardMarker[] = "zoo-scorecard-v1";

/// What to evaluate against, parsed from the kEvaluate request text
/// ("key=value" tokens, e.g. "dataset=SYN scale=0.15 seed=7 graphs=16";
/// empty text keeps every default).
struct EvalSpec {
  std::string dataset = "SYN";  ///< must export planted-motif ground truth
  double scale = 0.15;          ///< generator scale in (0, 1]
  uint64_t seed = 0;            ///< generator seed offset
  uint64_t graphs = 0;          ///< cap on graphs scored (0 = all)
};

Result<EvalSpec> ParseEvalSpec(const std::string& text);

/// Canonical spec echo ("dataset=SYN scale=0.15 seed=0 graphs=0").
std::string EvalSpecToString(const EvalSpec& spec);

/// One streamed per-graph row.
struct GraphScore {
  uint64_t graph_index = 0;
  ClassLabel label = -1;       ///< the model's prediction, what was explained
  uint64_t explanation_nodes = 0;
  uint64_t truth_nodes = 0;    ///< planted motif size
  uint64_t recovered = 0;      ///< |explanation ∩ truth|
};

/// The aggregate scorecard.
struct Scorecard {
  std::string route;
  std::string kind;     ///< KindName of the route's explainer
  std::string dataset;
  double scale = 0.0;
  uint64_t seed = 0;
  uint64_t graphs = 0;  ///< graphs actually scored
  double fidelity_plus = 0.0;
  double fidelity_minus = 0.0;
  double sparsity = 0.0;
  double accuracy = 0.0;  ///< mean motif-recovery fraction

  bool operator==(const Scorecard&) const = default;
};

/// Canonical one-line JSON: fixed key order, round-trip-exact doubles
/// (io_util SetMaxPrecision), no whitespace. Equal scorecards encode to
/// equal bytes.
std::string ScorecardToJson(const Scorecard& card);

/// Strict inverse of ScorecardToJson (what the CLI gate parses out of the
/// response text). kInvalidArgument on anything but a v1 scorecard line.
Result<Scorecard> ScorecardFromJson(const std::string& json);

/// Render one per-graph row ("graph 3 label 1 nodes 6 truth 11
/// recovered 5").
std::string GraphScoreRow(const GraphScore& row);

/// Score `config`'s explainer over `spec`'s dataset with `model`.
/// Deterministic for a fixed (config, spec, model): graphs are scored in
/// corpus order and every explainer seeds a fresh RNG per call. The
/// cancellation token (the serve deadline/shutdown signal) is checked
/// between graphs and inside each explainer; `config.budget_ms` bounds
/// the whole evaluation on top of it (0 = unbounded). `rows` (optional)
/// receives one GraphScore per scored graph.
Result<Scorecard> EvaluateRoute(const ExplainerRouteConfig& config,
                                const GcnClassifier& model,
                                const EvalSpec& spec,
                                const CancellationToken* cancel = nullptr,
                                std::vector<GraphScore>* rows = nullptr);

}  // namespace zoo
}  // namespace gvex
