#include "gvex/zoo/route_config.h"

#include <cctype>
#include <set>
#include <sstream>

namespace gvex {
namespace zoo {

const char* KindName(ExplainerKind kind) {
  switch (kind) {
    case ExplainerKind::kGnnExplainer:
      return "GE";
    case ExplainerKind::kSubgraphX:
      return "SX";
    case ExplainerKind::kGStarX:
      return "GX";
    case ExplainerKind::kGcf:
      return "GCF";
    case ExplainerKind::kGvex:
      return "GVEX";
  }
  return "?";
}

Result<ExplainerKind> KindFromName(const std::string& name) {
  if (name == "GE") return ExplainerKind::kGnnExplainer;
  if (name == "SX") return ExplainerKind::kSubgraphX;
  if (name == "GX") return ExplainerKind::kGStarX;
  if (name == "GCF") return ExplainerKind::kGcf;
  if (name == "GVEX") return ExplainerKind::kGvex;
  return Status::InvalidArgument("unknown explainer kind: " + name);
}

Status ValidateRouteConfig(const ExplainerRouteConfig& config) {
  if (config.route.empty()) {
    return Status::InvalidArgument("zoo route name must not be empty");
  }
  for (char c : config.route) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      return Status::InvalidArgument("zoo route name must not contain "
                                     "whitespace: '" +
                                     config.route + "'");
    }
  }
  if (config.max_nodes == 0) {
    return Status::InvalidArgument("zoo route " + config.route +
                                   ": max_nodes must be >= 1");
  }
  return Status::OK();
}

std::string EncodeZooArtifact(
    const std::vector<ExplainerRouteConfig>& configs) {
  std::ostringstream out;
  out << kZooArtifactMagic << "\n";
  for (const auto& c : configs) {
    out << "route " << c.route << " kind " << KindName(c.kind) << " seed "
        << c.seed << " budget_ms " << c.budget_ms << " max_nodes "
        << c.max_nodes << "\n";
  }
  out << "end\n";
  return out.str();
}

Result<std::vector<ExplainerRouteConfig>> ParseZooArtifact(
    const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kZooArtifactMagic) {
    return Status::InvalidArgument("zoo artifact: missing gvexzoo-v1 magic");
  }
  std::vector<ExplainerRouteConfig> configs;
  std::set<std::string> seen;
  bool terminated = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line == "end") {
      terminated = true;
      break;
    }
    std::istringstream row(line);
    std::string key_route, key_kind, key_seed, key_budget, key_max, kind;
    ExplainerRouteConfig c;
    if (!(row >> key_route >> c.route >> key_kind >> kind >> key_seed >>
          c.seed >> key_budget >> c.budget_ms >> key_max >> c.max_nodes) ||
        key_route != "route" || key_kind != "kind" || key_seed != "seed" ||
        key_budget != "budget_ms" || key_max != "max_nodes") {
      return Status::InvalidArgument("zoo artifact: malformed route line: " +
                                     line);
    }
    std::string trailing;
    if (row >> trailing) {
      return Status::InvalidArgument("zoo artifact: trailing tokens on: " +
                                     line);
    }
    GVEX_ASSIGN_OR_RETURN(c.kind, KindFromName(kind));
    GVEX_RETURN_NOT_OK(ValidateRouteConfig(c));
    if (!seen.insert(c.route).second) {
      return Status::InvalidArgument("zoo artifact: duplicate route: " +
                                     c.route);
    }
    configs.push_back(std::move(c));
  }
  if (!terminated) {
    return Status::InvalidArgument("zoo artifact: missing end terminator");
  }
  return configs;
}

bool IsZooArtifact(const std::string& text) {
  const std::string magic = kZooArtifactMagic;
  return text.size() >= magic.size() && text.compare(0, magic.size(), magic) == 0;
}

}  // namespace zoo
}  // namespace gvex
