// Streaming / anytime explanation maintenance (§5 of the paper): process
// graphs as node streams with StreamGVEX, inspect the views after each
// batch, and compare against the batch algorithm — demonstrating the
// anytime property and the incremental pattern maintenance.
//
//   ./build/examples/streaming_views [num_molecules]
#include <cstdio>
#include <cstdlib>
#include <unordered_set>

#include "gvex/common/stopwatch.h"
#include "gvex/datasets/datasets.h"
#include "gvex/explain/approx_gvex.h"
#include "gvex/explain/stream_gvex.h"
#include "gvex/gnn/trainer.h"

using namespace gvex;

int main(int argc, char** argv) {
  size_t num_molecules = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 100;

  datasets::MutagenicityOptions data_opts;
  data_opts.num_graphs = num_molecules;
  GraphDatabase db = datasets::MakeMutagenicity(data_opts);

  GcnConfig mc;
  mc.input_dim = db.feature_dim();
  mc.hidden_dim = 32;
  mc.num_layers = 3;
  mc.num_classes = 2;
  auto model = GcnClassifier::Create(mc);
  if (!model.ok()) return 1;
  DataSplit split = SplitDatabase(db, 0.8, 0.1, 42);
  TrainerConfig tc;
  tc.epochs = 150;
  tc.adam.learning_rate = 5e-3f;
  Trainer(tc).Fit(&*model, db, split);
  std::vector<ClassLabel> assigned = AssignLabels(*model, db);

  Configuration config;
  config.theta = 0.08f;
  config.default_coverage = {0, 12};

  // Process the mutagen group graph-by-graph as arriving node streams.
  // The view is inspectable after every graph — the "anytime" access the
  // streaming algorithm provides (users can interrupt and query).
  StreamGvex stream(&*model, config);
  std::vector<Graph> patterns;
  std::unordered_set<std::string> codes;
  ExplanationView view;
  view.label = 1;
  Stopwatch total;

  auto group = GraphDatabase::LabelGroup(assigned, 1);
  std::printf("streaming %zu mutagen graphs, snapshot every 25%%:\n",
              group.size());
  size_t next_snapshot = group.size() / 4;
  for (size_t idx = 0; idx < group.size(); ++idx) {
    size_t gi = group[idx];
    auto sub = stream.ExplainGraphStream(db.graph(gi), gi, 1, &patterns,
                                         &codes);
    if (sub.ok()) {
      view.explainability += sub->explainability;
      view.subgraphs.push_back(std::move(*sub));
    }
    if (idx + 1 == next_snapshot || idx + 1 == group.size()) {
      std::printf(
          "  after %3zu/%zu graphs: %3zu subgraphs, %2zu patterns, f=%.1f, "
          "%.2fs elapsed\n",
          idx + 1, group.size(), view.subgraphs.size(), patterns.size(),
          view.explainability, total.ElapsedSeconds());
      next_snapshot += group.size() / 4;
    }
  }
  std::printf("stream stats: %zu accepts, %zu swaps, %zu skips, %zu EVerify "
              "calls\n",
              stream.stats().accepts, stream.stats().swaps,
              stream.stats().skips, stream.stats().everify_calls);

  // Final pattern reduction (the batched Procedure-5 swap).
  std::vector<Graph> raw;
  for (const auto& s : view.subgraphs) raw.push_back(s.subgraph);
  PatternReduction reduced = ReducePatterns(patterns, raw, config);
  std::printf("pattern reduction: %zu mined -> %zu kept, edge loss %.1f%%\n",
              patterns.size(), reduced.patterns.size(),
              100.0 * reduced.edge_loss);

  // Compare against the batch algorithm on the same group.
  ApproxGvex batch(&*model, config);
  Stopwatch batch_watch;
  auto batch_view = batch.ExplainLabel(db, assigned, 1);
  if (batch_view.ok()) {
    std::printf(
        "\nbatch ApproxGVEX:  %zu subgraphs, f=%.1f in %.2fs\n"
        "stream StreamGVEX: %zu subgraphs, f=%.1f in %.2fs  "
        "(anytime, 1/4-approx)\n",
        batch_view->subgraphs.size(), batch_view->explainability,
        batch_watch.ElapsedSeconds(), view.subgraphs.size(),
        view.explainability, total.ElapsedSeconds());
  }
  return 0;
}
