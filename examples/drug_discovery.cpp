// Drug-discovery walkthrough (the paper's motivating Example 1.1): train a
// mutagenicity classifier, generate explanation views for BOTH labels,
// verify that removing an explanation flips the prediction, and answer
// analyst queries against the queryable pattern tier:
//   "which toxicophores occur in mutagens?"
//   "which nonmutagens contain pattern P?"
//
//   ./build/examples/drug_discovery [num_molecules]
#include <cstdio>
#include <cstdlib>

#include "gvex/datasets/datasets.h"
#include "gvex/explain/approx_gvex.h"
#include "gvex/explain/verifier.h"
#include "gvex/gnn/trainer.h"
#include "gvex/matching/vf2.h"

using namespace gvex;

namespace {

const char* AtomName(NodeType t) {
  static const char* kNames[] = {"C", "N", "O", "H", "Cl", "S"};
  return (t >= 0 && t < 6) ? kNames[t] : "?";
}

void PrintMolecule(const Graph& g, const char* indent) {
  std::printf("%satoms:", indent);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    std::printf(" %u:%s", v, AtomName(g.node_type(v)));
  }
  std::printf("\n%sbonds:", indent);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const auto& nb : g.neighbors(u)) {
      if (nb.node < u) continue;
      std::printf(" %u%s%u", u,
                  nb.edge_type == datasets::kDoubleBond ? "=" : "-", nb.node);
    }
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  size_t num_molecules = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 120;

  datasets::MutagenicityOptions data_opts;
  data_opts.num_graphs = num_molecules;
  GraphDatabase db = datasets::MakeMutagenicity(data_opts);

  GcnConfig mc;
  mc.input_dim = db.feature_dim();
  mc.hidden_dim = 32;
  mc.num_layers = 3;
  mc.num_classes = 2;
  auto model = GcnClassifier::Create(mc);
  if (!model.ok()) return 1;
  DataSplit split = SplitDatabase(db, 0.8, 0.1, 42);
  TrainerConfig tc;
  tc.epochs = 150;
  tc.adam.learning_rate = 5e-3f;
  TrainReport rep = Trainer(tc).Fit(&*model, db, split);
  std::printf("classifier trained: test accuracy %.2f over %zu molecules\n",
              rep.test_accuracy, db.size());
  std::vector<ClassLabel> assigned = AssignLabels(*model, db);

  Configuration config;
  config.theta = 0.08f;
  config.radius = 0.25f;
  config.default_coverage = {0, 12};
  ApproxGvex solver(&*model, config);

  // Views for both labels — the label-specific property in action.
  auto views = solver.Explain(db, assigned, {0, 1});
  if (!views.ok()) {
    std::fprintf(stderr, "%s\n", views.status().ToString().c_str());
    return 1;
  }
  const ExplanationView* mutagen_view = views->ForLabel(1);
  const ExplanationView* nonmutagen_view = views->ForLabel(0);

  std::printf("\n-- mutagen view: %s\n", mutagen_view->Summary().c_str());
  std::printf("-- nonmutagen view: %s\n", nonmutagen_view->Summary().c_str());

  // Counterfactual demonstration on the first explained mutagen.
  if (!mutagen_view->subgraphs.empty()) {
    const ExplanationSubgraph& s = mutagen_view->subgraphs.front();
    const Graph& g = db.graph(s.graph_index);
    std::printf("\nwhy is '%s' a mutagen? its explanation subgraph:\n",
                db.name(s.graph_index).c_str());
    PrintMolecule(s.subgraph, "  ");
    Graph rest = g.RemoveNodes(s.nodes);
    std::printf("  prediction with subgraph removed: %s (was mutagen)\n",
                model->Predict(rest) == 1 ? "still mutagen" : "NONMUTAGEN");
  }

  // Analyst query 1: which toxicophores occur in mutagens? Search the
  // pattern tier for the known NO2 toxicophore.
  Graph nitro = datasets::NitroGroupPattern();
  MatchOptions loose;
  loose.semantics = MatchSemantics::kSubgraph;
  size_t toxicophore_patterns = 0;
  for (const Graph& p : mutagen_view->patterns) {
    // Either the pattern embeds the full NO2 group or is a fragment of it
    // (fragments arise when coverage already handled part of the group).
    if (Vf2Matcher::HasMatch(nitro, p, loose) ||
        Vf2Matcher::HasMatch(p, nitro, loose)) {
      ++toxicophore_patterns;
    }
  }
  std::printf("\nquery: which mutagen patterns relate to the NO2 "
              "toxicophore? -> %zu/%zu patterns\n",
              toxicophore_patterns, mutagen_view->patterns.size());

  // Analyst query 2: which nonmutagens contain a given mutagen pattern?
  if (!mutagen_view->patterns.empty()) {
    const Graph& probe = mutagen_view->patterns.front();
    size_t hits = 0;
    for (const auto& s : nonmutagen_view->subgraphs) {
      if (Vf2Matcher::HasMatch(probe, s.subgraph, loose)) ++hits;
    }
    std::printf("query: which nonmutagen explanations contain mutagen "
                "pattern P0? -> %zu/%zu\n",
                hits, nonmutagen_view->subgraphs.size());
  }

  // Verification of both views (Lemma 3.1 constraints C1-C3).
  for (const ExplanationView* v : {nonmutagen_view, mutagen_view}) {
    ViewVerification check = VerifyExplanationView(*v, db, *model, config);
    std::printf("label %d verification: %s %s\n", v->label,
                check.ok() ? "PASS" : "FAIL", check.detail.c_str());
  }
  return 0;
}
