// Quickstart: train a GCN on the synthetic Mutagenicity dataset, generate
// explanation views for the "mutagen" label with both GVEX algorithms, and
// print the two-tier result (patterns + explanation subgraphs).
//
//   ./build/examples/quickstart
#include <cstdio>

#include "gvex/datasets/datasets.h"
#include "gvex/explain/approx_gvex.h"
#include "gvex/explain/stream_gvex.h"
#include "gvex/explain/verifier.h"
#include "gvex/gnn/trainer.h"
#include "gvex/metrics/metrics.h"

using namespace gvex;

namespace {

const char* AtomName(NodeType t) {
  switch (t) {
    case datasets::kCarbon:
      return "C";
    case datasets::kNitrogen:
      return "N";
    case datasets::kOxygen:
      return "O";
    case datasets::kHydrogen:
      return "H";
    case datasets::kChlorine:
      return "Cl";
    case datasets::kSulfur:
      return "S";
    default:
      return "?";
  }
}

void PrintPattern(const Graph& p, size_t index) {
  std::printf("  pattern P%zu: %zu nodes, %zu edges  [", index,
              p.num_nodes(), p.num_edges());
  for (NodeId v = 0; v < p.num_nodes(); ++v) {
    std::printf("%s%s", v > 0 ? " " : "", AtomName(p.node_type(v)));
  }
  std::printf("]  edges:");
  for (NodeId u = 0; u < p.num_nodes(); ++u) {
    for (const auto& nb : p.neighbors(u)) {
      if (nb.node < u) continue;
      std::printf(" %s%u-%u", nb.edge_type == datasets::kDoubleBond ? "=" : "",
                  u, nb.node);
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  // 1. Build the graph database (synthetic molecules with planted
  //    toxicophores; see DESIGN.md for the substitution rationale).
  datasets::MutagenicityOptions data_opts;
  data_opts.num_graphs = 80;
  GraphDatabase db = datasets::MakeMutagenicity(data_opts);
  auto stats = db.ComputeStats();
  std::printf("dataset: %zu graphs, avg %.1f nodes / %.1f edges, %zu classes\n",
              stats.num_graphs, stats.avg_nodes, stats.avg_edges,
              stats.num_classes);

  // 2. Train the GNN classifier M (3-layer GCN + max-pool + FC).
  GcnConfig model_cfg;
  model_cfg.input_dim = db.feature_dim();
  model_cfg.hidden_dim = 32;
  model_cfg.num_layers = 3;
  model_cfg.num_classes = db.num_classes();
  auto model = GcnClassifier::Create(model_cfg);
  if (!model.ok()) {
    std::fprintf(stderr, "model: %s\n", model.status().ToString().c_str());
    return 1;
  }
  DataSplit split = SplitDatabase(db, 0.8, 0.1, 42);
  TrainerConfig train_cfg;
  train_cfg.epochs = 120;
  train_cfg.adam.learning_rate = 5e-3f;
  TrainReport report = Trainer(train_cfg).Fit(&*model, db, split);
  std::printf("trained %zu epochs, test accuracy %.2f\n", report.epochs_run,
              report.test_accuracy);

  // 3. Labels assigned by M define the label groups to explain.
  std::vector<ClassLabel> assigned = AssignLabels(*model, db);

  // 4. Configure GVEX: explain the "mutagen" label (1) with at most 12
  //    selected nodes per graph.
  Configuration config;
  config.theta = 0.08f;
  config.radius = 0.25f;
  config.gamma = 0.5f;
  config.default_coverage = {0, 12};

  ApproxGvex approx(&*model, config);
  auto view = approx.ExplainLabel(db, assigned, /*l=*/1);
  if (!view.ok()) {
    std::fprintf(stderr, "ApproxGVEX: %s\n", view.status().ToString().c_str());
    return 1;
  }
  std::printf("\nApproxGVEX %s\n", view->Summary().c_str());
  for (size_t i = 0; i < view->patterns.size(); ++i) {
    PrintPattern(view->patterns[i], i);
  }
  std::printf("  (%zu/%zu graphs explained, %zu EVerify calls)\n",
              approx.stats().graphs_explained, approx.stats().graphs_attempted,
              approx.stats().everify_calls);

  // 5. Verify the three view constraints C1-C3 (Lemma 3.1).
  ViewVerification check = VerifyExplanationView(*view, db, *model, config);
  std::printf("  verification: C1=%d C2=%d C3=%d %s\n", check.c1_graph_view,
              check.c2_explanation, check.c3_coverage, check.detail.c_str());

  // 6. Fidelity metrics of the lower tier.
  FidelityReport fid =
      EvaluateFidelity(*model, db, ToGraphExplanations(*view));
  std::printf("  fidelity+ %.3f, fidelity- %.3f, sparsity %.3f (%zu graphs)\n",
              fid.fidelity_plus, fid.fidelity_minus, fid.sparsity,
              fid.num_graphs);

  // 7. The streaming algorithm maintains the same structure one node at a
  //    time (anytime views, 1/4-approximation).
  StreamGvex stream(&*model, config);
  auto stream_view = stream.ExplainLabel(db, assigned, /*l=*/1);
  if (!stream_view.ok()) {
    std::fprintf(stderr, "StreamGVEX: %s\n",
                 stream_view.status().ToString().c_str());
    return 1;
  }
  std::printf("\nStreamGVEX %s\n", stream_view->Summary().c_str());
  std::printf("  (accepts %zu, swaps %zu, skips %zu)\n",
              stream.stats().accepts, stream.stats().swaps,
              stream.stats().skips);
  FidelityReport sfid =
      EvaluateFidelity(*model, db, ToGraphExplanations(*stream_view));
  std::printf("  fidelity+ %.3f, fidelity- %.3f, sparsity %.3f\n",
              sfid.fidelity_plus, sfid.fidelity_minus, sfid.sparsity);
  return 0;
}
