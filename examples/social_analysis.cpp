// Social-network analysis (case study 2 of the paper): explain why a GNN
// separates Reddit-style threads into "online discussion" vs
// "question-answer", using configurable per-label coverage constraints —
// the scenario where an analyst asks for more detail on one class than
// the other.
//
//   ./build/examples/social_analysis [num_threads]
#include <cstdio>
#include <cstdlib>

#include "gvex/datasets/datasets.h"
#include "gvex/explain/approx_gvex.h"
#include "gvex/gnn/trainer.h"
#include "gvex/metrics/metrics.h"

using namespace gvex;

namespace {

void DescribePattern(const Graph& p, size_t index) {
  std::printf("    P%zu: %zu users, %zu interactions, degrees [", index,
              p.num_nodes(), p.num_edges());
  for (NodeId v = 0; v < p.num_nodes(); ++v) {
    std::printf("%s%zu", v > 0 ? " " : "", p.degree(v));
  }
  std::printf("]\n");
}

}  // namespace

int main(int argc, char** argv) {
  size_t num_threads = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 60;

  datasets::RedditOptions data_opts;
  data_opts.num_graphs = num_threads;
  GraphDatabase db = datasets::MakeRedditBinary(data_opts);

  GcnConfig mc;
  mc.input_dim = db.feature_dim();
  mc.hidden_dim = 32;
  mc.num_layers = 3;
  mc.num_classes = 2;
  auto model = GcnClassifier::Create(mc);
  if (!model.ok()) return 1;
  DataSplit split = SplitDatabase(db, 0.8, 0.1, 42);
  TrainerConfig tc;
  tc.epochs = 150;
  tc.adam.learning_rate = 5e-3f;
  TrainReport rep = Trainer(tc).Fit(&*model, db, split);
  std::printf("thread classifier: test accuracy %.2f over %zu threads\n",
              rep.test_accuracy, db.size());
  std::vector<ClassLabel> assigned = AssignLabels(*model, db);

  // Configurable coverage: the analyst wants detailed explanations of
  // Q&A threads (up to 16 users) but only a sketch of discussions (6).
  Configuration config;
  config.theta = 0.08f;
  config.radius = 0.25f;
  config.coverage[0] = {0, 6};    // online-discussion: sketch
  config.coverage[1] = {4, 16};   // question-answer: detail, >= 4 users
  config.pgen.min_pattern_nodes = 4;  // interaction motifs, not edges

  ApproxGvex solver(&*model, config);
  auto views = solver.Explain(db, assigned, {0, 1});
  if (!views.ok()) {
    std::fprintf(stderr, "%s\n", views.status().ToString().c_str());
    return 1;
  }

  for (const ExplanationView& view : views->views) {
    const char* name = view.label == 0 ? "online-discussion" : "question-answer";
    std::printf("\n== %s ==\n", name);
    std::printf("  %zu explanation subgraphs, %zu patterns, f = %.2f\n",
                view.subgraphs.size(), view.patterns.size(),
                view.explainability);
    for (size_t p = 0; p < view.patterns.size(); ++p) {
      DescribePattern(view.patterns[p], p);
    }
    // Per-label coverage bound respected.
    size_t max_selected = 0;
    for (const auto& s : view.subgraphs) {
      max_selected = std::max(max_selected, s.nodes.size());
    }
    std::printf("  largest selection: %zu users (bound %zu)\n", max_selected,
                config.ConstraintFor(view.label).upper);
    FidelityReport fid =
        EvaluateFidelity(*model, db, ToGraphExplanations(view));
    std::printf("  fidelity+ %.3f, fidelity- %.3f, sparsity %.3f\n",
                fid.fidelity_plus, fid.fidelity_minus, fid.sparsity);
  }

  std::printf("\ninterpretation: discussion explanations are dominated by "
              "star-shaped reply patterns (one hub, many one-off repliers); "
              "Q&A explanations by biclique cores (few experts answering "
              "many askers) — the paper's Fig. 11 finding.\n");
  return 0;
}
