#!/usr/bin/env bash
# Build and run the test suite under AddressSanitizer + UndefinedBehaviorSanitizer.
#
# The corruption/fuzz tests (io_corruption_test, robustness_test) feed
# truncated and bit-flipped inputs to every loader; running them under
# ASan/UBSan is the acceptance gate for the hardened v2 serialization:
# loaders must return error Statuses, never crash or read out of bounds.
#
# Usage: tools/run_sanitized_tests.sh [ctest-args...]
#   e.g. tools/run_sanitized_tests.sh -R IoCorruption
set -euo pipefail

cd "$(dirname "$0")/.."

cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "$(nproc)"

export ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=1:detect_leaks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}"

ctest --test-dir build-asan --output-on-failure -j "$(nproc)" "$@"

# The chaos smoke (the `chaos-smoke` ctest label, tools/chaos_harness)
# replays seeded fault schedules over the primary/standby/publisher
# topology. Run it explicitly so a filtered invocation ("$@" above) can
# never silently skip it: under ASan/UBSan it is the memory-safety gate
# for every failure path the injected faults can reach.
ctest --test-dir build-asan --output-on-failure -L chaos-smoke

# The serving smoke (also registered as the `serve-smoke`,
# `cluster-smoke`, `ingest-smoke`, `fleet-smoke`, and `zoo-smoke` ctest
# labels) exercises the socket server, worker pool, deadline monitor,
# route quotas, fan-out publish, the primary->standby replication loop,
# the live-ingest write path (journaled crash-exact resume under a real
# kill -9), and the explainer-zoo evaluation gate; under ASan/UBSan it
# doubles as a thread-lifecycle and use-after-free gate.
tools/run_server_smoke.sh build-asan/tools/gvex_tool all

# The compact-data-plane suites — run explicitly for the same reason as
# the chaos smoke above. The arena hands out raw bump-pointer memory and
# the CSR view aliases Graph internals, so mark/rewind lifetime bugs and
# view out-of-bounds reads only surface under ASan; the quantize suite
# covers the fp16/int8 codecs and the bundle-v2 loader against the same
# out-of-bounds class the io_corruption tests gate for v1 loaders.
ctest --test-dir build-asan --output-on-failure \
  -R 'ArenaTest|CsrViewTest|Fp16Test|Int8Test|QuantizedModelTest|QuantizedBundleTest'
