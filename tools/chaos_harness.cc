// chaos_harness: seeded chaos scenarios over a primary/standby/publisher
// topology (src/gvex/cluster/chaos.h).
//
//   chaos_harness [--seeds N] [--start-seed S] [--steps K]
//                 [--fault-probability P] [--replay SEED]
//
// Default mode runs N consecutive seeds, re-runs every determinism-check
// seed to assert same-seed => byte-identical event log, and exits 0 only
// when every invariant held across every schedule. --replay runs one
// seed and prints its full event log (the debugging entry point: take a
// failing seed from CI, replay it locally under a debugger).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "gvex/cluster/chaos.h"

namespace {

struct HarnessOptions {
  int seeds = 25;
  uint64_t start_seed = 1;
  int steps = 30;
  double fault_probability = 0.4;
  long replay = -1;       // >= 0: run one seed, print the event log
  int determinism_every = 5;  // re-run every Nth seed for log identity
};

bool ParseArgs(int argc, char** argv, HarnessOptions* out) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](long* value) {
      if (i + 1 >= argc) return false;
      *value = std::atol(argv[++i]);
      return true;
    };
    long value = 0;
    if (arg == "--seeds" && next(&value)) {
      out->seeds = static_cast<int>(value);
    } else if (arg == "--start-seed" && next(&value)) {
      out->start_seed = static_cast<uint64_t>(value);
    } else if (arg == "--steps" && next(&value)) {
      out->steps = static_cast<int>(value);
    } else if (arg == "--replay" && next(&value)) {
      out->replay = value;
    } else if (arg == "--determinism-every" && next(&value)) {
      out->determinism_every = static_cast<int>(value);
    } else if (arg == "--fault-probability" && i + 1 < argc) {
      out->fault_probability = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: chaos_harness [--seeds N] [--start-seed S] "
                   "[--steps K] [--fault-probability P] "
                   "[--determinism-every N] [--replay SEED]\n");
      return false;
    }
  }
  return out->seeds > 0 && out->steps > 0;
}

}  // namespace

int main(int argc, char** argv) {
  HarnessOptions opts;
  if (!ParseArgs(argc, argv, &opts)) return 2;

  std::printf("building chaos fixture (trains a small GCN)...\n");
  std::fflush(stdout);
  auto fixture = gvex::cluster::MakeChaosFixture();
  if (!fixture.ok()) {
    std::fprintf(stderr, "fixture: %s\n", fixture.status().ToString().c_str());
    return 1;
  }

  auto run = [&](uint64_t seed) {
    gvex::cluster::ChaosOptions scenario;
    scenario.seed = seed;
    scenario.steps = opts.steps;
    scenario.fault_probability = opts.fault_probability;
    scenario.generations = fixture->generations;
    scenario.queries = fixture->queries;
    return gvex::cluster::RunChaosScenario(scenario);
  };

  if (opts.replay >= 0) {
    auto report = run(static_cast<uint64_t>(opts.replay));
    if (!report.ok()) {
      std::fprintf(stderr, "replay: %s\n", report.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", report->EventLog().c_str());
    for (const std::string& v : report->violations) {
      std::printf("VIOLATION: %s\n", v.c_str());
    }
    return report->violations.empty() ? 0 : 1;
  }

  int bad_seeds = 0;
  uint64_t total_faults = 0, total_publish_failures = 0, total_syncs = 0;
  for (int i = 0; i < opts.seeds; ++i) {
    const uint64_t seed = opts.start_seed + static_cast<uint64_t>(i);
    auto report = run(seed);
    if (!report.ok()) {
      std::fprintf(stderr, "seed %llu: %s\n",
                   static_cast<unsigned long long>(seed),
                   report.status().ToString().c_str());
      return 1;
    }
    total_faults += report->faults_armed;
    total_publish_failures += report->publish_failures;
    total_syncs += report->syncs;
    if (!report->violations.empty()) {
      ++bad_seeds;
      std::printf("seed %llu: %zu violation(s)\n",
                  static_cast<unsigned long long>(seed),
                  report->violations.size());
      for (const std::string& v : report->violations) {
        std::printf("  VIOLATION: %s\n", v.c_str());
      }
      std::printf("  replay with: chaos_harness --replay %llu --steps %d\n",
                  static_cast<unsigned long long>(seed), opts.steps);
    }
    if (opts.determinism_every > 0 && i % opts.determinism_every == 0) {
      auto again = run(seed);
      if (!again.ok() || again->EventLog() != report->EventLog()) {
        ++bad_seeds;
        std::printf("seed %llu: NON-DETERMINISTIC event log across reruns\n",
                    static_cast<unsigned long long>(seed));
      }
    }
    std::fflush(stdout);
  }
  std::printf("chaos: %d seeds x %d steps, %llu faults armed, "
              "%llu publish failures, %llu sync rounds, %d bad seed(s)\n",
              opts.seeds, opts.steps,
              static_cast<unsigned long long>(total_faults),
              static_cast<unsigned long long>(total_publish_failures),
              static_cast<unsigned long long>(total_syncs), bad_seeds);
  return bad_seeds == 0 ? 0 : 1;
}
