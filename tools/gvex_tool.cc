// gvex_tool: the GVEX pipeline as a command-line utility. See
// src/gvex/cli/cli.h for the synopsis.
#include <string>
#include <vector>

#include "gvex/cli/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return gvex::cli::Run(args);
}
