#!/usr/bin/env bash
# Build Release, run every bench binary with its small preset, collect the
# BENCH_<name>.json PerfReports into bench/results/, and gate key timings
# against the checked-in baselines in bench/baselines/ with tools/bench_diff
# (default tolerance +/-30%; rows under the 250 ms floor are skipped, so
# the gate reads the substantial rows — per-report totals above all — and
# ignores scheduler noise on budget-bounded sub-second rows).
#
# Usage: tools/run_benchmarks.sh [--update-baselines|--refresh-baselines]
#                                [--tolerance <frac>]
#
#   --update-baselines  copy this run's reports over bench/baselines/
#                       (do this on the reference machine after a deliberate
#                       performance change, then commit the new baselines)
#   --refresh-baselines alias of --update-baselines, for the workflow in
#                       docs/PERFORMANCE.md
#   --tolerance <frac>  relative drift allowed before the gate fails
#                       (default 0.30)
#
# Small presets keep the full sweep to a couple of minutes on one core;
# see docs/BENCHMARKS.md for the paper-scale commands.
set -euo pipefail

cd "$(dirname "$0")/.."

TOLERANCE=0.30
UPDATE_BASELINES=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --update-baselines|--refresh-baselines) UPDATE_BASELINES=1; shift ;;
    --tolerance) TOLERANCE="$2"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

cmake --preset default
cmake --build --preset default -j "$(nproc)"

RESULTS=bench/results
BASELINES=bench/baselines
rm -rf "$RESULTS"
mkdir -p "$RESULTS"
export GVEX_BENCH_DIR="$RESULTS"

# bench name -> small-preset arguments. Every scaled bench runs at
# scale 0.15 (enough graphs to exercise each code path); table3 only
# computes dataset statistics so it keeps a larger scale, and
# micro_kernels takes google-benchmark flags instead of a scale.
run_bench() {
  local name="$1"; shift
  local bin="./build/bench/bench_${name}"
  if [[ ! -x "$bin" ]]; then
    echo "bench binary missing: $bin (build failed or bench not compiled)" >&2
    exit 1
  fi
  echo "== bench_${name} $*"
  "$bin" "$@" > "$RESULTS/bench_${name}.out"
  if [[ ! -f "$RESULTS/BENCH_${name}.json" ]]; then
    echo "bench_${name} did not write $RESULTS/BENCH_${name}.json" >&2
    exit 1
  fi
  # A truncated/malformed report must fail the run, not silently pass the
  # baseline diff (which skips unparseable files with exit 2 anyway).
  if ! ./build/tools/bench_diff --validate "$RESULTS/BENCH_${name}.json"; then
    echo "bench_${name} wrote an invalid report" >&2
    exit 1
  fi
}

run_bench table1_capabilities
run_bench table3_datasets 0.5
run_bench fig5_fidelity_plus 0.15
run_bench fig6_fidelity_minus 0.15
run_bench fig7_param_sensitivity 0.15
run_bench fig8_conciseness 0.15
run_bench fig9_efficiency 0.15
run_bench fig9_scalability 0.15
run_bench fig12_node_order 0.15
run_bench ablation 0.15
run_bench case_drug 0.15
run_bench case_enzymes 0.15
run_bench case_social 0.15
run_bench micro_kernels --benchmark_min_time=0.05
run_bench serve --scale 0.15 --seed 42 --ops 40 --delay-ms 10
run_bench cluster --scale 0.15 --seed 42 --ops 40
run_bench ingest --scale 0.15 --seed 42 --ops 40
run_bench zoo --scale 0.15 --seed 42 --ops 2

echo
echo "reports collected in $RESULTS/:"
ls "$RESULTS"/BENCH_*.json

if [[ "$UPDATE_BASELINES" -eq 1 ]]; then
  mkdir -p "$BASELINES"
  cp "$RESULTS"/BENCH_*.json "$BASELINES"/
  echo "baselines updated in $BASELINES/ — review and commit them"
  exit 0
fi

echo
echo "== diffing against $BASELINES/ (tolerance +/-$(awk "BEGIN{print 100*$TOLERANCE}")%)"
FAILED=0
for report in "$RESULTS"/BENCH_*.json; do
  base="$BASELINES/$(basename "$report")"
  if [[ ! -f "$base" ]]; then
    echo "-- $(basename "$report"): no baseline (run with --update-baselines to create)"
    continue
  fi
  echo "-- $(basename "$report")"
  if ! ./build/tools/bench_diff "$base" "$report" "$TOLERANCE"; then
    FAILED=1
  fi
done

# Memory-regression gate: micro_kernels publishes the compact-data-plane
# footprint params (bytes_per_view_*, model_bytes_*, peak_rss_kb);
# bench_diff --mem fails only when a memory metric GREW past tolerance —
# shrinkage is an improvement, and the timing floor above would
# misclassify byte counts as sub-floor rows.
MEM_REPORT="$RESULTS/BENCH_micro_kernels.json"
MEM_BASE="$BASELINES/BENCH_micro_kernels.json"
if [[ -f "$MEM_BASE" ]]; then
  echo
  echo "== memory gate (micro_kernels params, tolerance +$(awk "BEGIN{print 100*$TOLERANCE}")%)"
  if ! ./build/tools/bench_diff --mem "$MEM_BASE" "$MEM_REPORT" "$TOLERANCE"; then
    FAILED=1
  fi
fi

if [[ "$FAILED" -ne 0 ]]; then
  echo "benchmark regression gate FAILED (drift beyond +/-$(awk "BEGIN{print 100*$TOLERANCE}")%)" >&2
  exit 1
fi
echo "benchmark regression gate passed"
