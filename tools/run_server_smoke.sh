#!/usr/bin/env bash
# End-to-end smoke for the serving subsystem (docs/SERVING.md): build a
# small dataset/model/view pipeline with gvex_tool, start `gvex_tool
# serve` on a Unix socket, round-trip every request type with `gvex_tool
# client`, and diff each socket answer byte-for-byte against `client
# --local` (the identical request engine run in-process). Two armed-
# failpoint legs then check fault behavior over the wire: an injected
# service delay must not change any byte of the answers, and an injected
# admission failure must surface as a clean kOverloaded exit (code 12).
#
# Usage: tools/run_server_smoke.sh [path-to-gvex_tool]
#   default tool: ./build/tools/gvex_tool
set -euo pipefail

cd "$(dirname "$0")/.."

TOOL="${1:-./build/tools/gvex_tool}"
if [[ ! -x "$TOOL" ]]; then
  echo "gvex_tool not found at $TOOL (build first)" >&2
  exit 1
fi
TOOL="$(cd "$(dirname "$TOOL")" && pwd)/$(basename "$TOOL")"

WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  if [[ -n "$SERVER_PID" ]] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill "$SERVER_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT
cd "$WORK"

fail() { echo "SMOKE FAILED: $*" >&2; exit 1; }

echo "== pipeline: gen -> train -> explain"
"$TOOL" gen --dataset MUT --scale 0.2 --seed 7 --out db.txt
"$TOOL" train --db db.txt --out model.txt --epochs 40
"$TOOL" explain --db db.txt --model model.txt --labels 0,1 --out views.txt

# The planted NO2 toxicophore (README "Querying views").
cat > pattern.txt <<'EOF'
gvexgraph-v1
meta 4 3 0 0
n 0
n 1
n 2
n 2
e 0 1 0
e 1 2 1
e 1 3 1
EOF

SOCK="$WORK/gvex.sock"

start_server() {  # start_server [extra serve flags...]
  "$TOOL" serve --views views.txt --model model.txt --socket "$SOCK" \
    "$@" > serve.log 2>&1 &
  SERVER_PID=$!
  for _ in $(seq 1 100); do
    grep -q "serving on" serve.log && return 0
    kill -0 "$SERVER_PID" 2>/dev/null || break
    sleep 0.1
  done
  cat serve.log >&2
  fail "server did not become ready"
}

stop_server() {
  "$TOOL" client --socket "$SOCK" --type shutdown > /dev/null
  wait "$SERVER_PID" || fail "server exited non-zero after shutdown"
  SERVER_PID=""
}

# The five query types, as client argument lists.
QUERIES=(
  "--type support --label 1 --pattern pattern.txt"
  "--type contains --label 1 --pattern pattern.txt"
  "--type hits --label 1 --pattern pattern.txt --max-embeddings 5"
  "--type discriminative --label 1 --against 0"
  "--type classify --graph-db db.txt --graph-index 3"
)

check_queries() {  # check_queries <leg-name>
  local leg="$1"
  for q in "${QUERIES[@]}"; do
    # shellcheck disable=SC2086
    "$TOOL" client --socket "$SOCK" $q > socket.out
    # shellcheck disable=SC2086
    "$TOOL" client --local views.txt --model model.txt $q > local.out
    if ! diff -u local.out socket.out > /dev/null; then
      diff -u local.out socket.out >&2 || true
      fail "$leg: socket answer differs from in-process answer for: $q"
    fi
  done
  echo "   $leg: all ${#QUERIES[@]} query types byte-identical to --local"
}

echo "== serve + client round-trip (clean server)"
start_server
[[ "$("$TOOL" client --socket "$SOCK" --type ping)" == "pong" ]] \
  || fail "ping did not answer pong"
check_queries "clean"
"$TOOL" client --socket "$SOCK" --type stats > stats.json
grep -q '"generation"' stats.json || fail "stats dump missing generation"
stop_server

echo "== armed failpoint: injected service delay (answers must not change)"
start_server --fail "serve.exec_delay=delay(30)"
check_queries "delayed"
stop_server

echo "== armed failpoint: injected admission overload (clean exit 12)"
start_server --fail "serve.admit=error(overloaded),limit(1)"
set +e
"$TOOL" client --socket "$SOCK" --type support --label 1 \
  --pattern pattern.txt > /dev/null 2> overload.err
rc=$?
set -e
[[ "$rc" -eq 12 ]] || fail "expected exit 12 (kOverloaded), got $rc"
grep -qi "overloaded" overload.err || fail "stderr does not name the overload"
# The failpoint was limit(1): the very next request must succeed.
"$TOOL" client --socket "$SOCK" --type support --label 1 \
  --pattern pattern.txt > /dev/null || fail "server unhealthy after shed"
stop_server

echo "server smoke PASSED"
