#!/usr/bin/env bash
# End-to-end smoke for the serving subsystem (docs/SERVING.md): build a
# small dataset/model/view pipeline with gvex_tool, start `gvex_tool
# serve` on a Unix socket, round-trip every request type with `gvex_tool
# client`, and diff each socket answer byte-for-byte against `client
# --local` (the identical request engine run in-process). Two armed-
# failpoint legs then check fault behavior over the wire: an injected
# service delay must not change any byte of the answers, and an injected
# admission failure must surface as a clean kOverloaded exit (code 12).
# A route-quota leg bursts a quota'd secondary route until it sheds with
# the distinct kQuotaExceeded exit (code 13) while the default route's
# answers stay byte-identical to --local, and checks that `client
# --retry` rides out a quota shed.
#
# A cluster leg (docs/SERVING.md "Replication & routes") then proves the
# primary -> standby story end to end: a standby started with --follow
# tails the primary, `gvex_tool publish` pushes a new bundle, the standby
# installs + pre-warms it, and after `kill -9` of the primary the standby
# answers every query type byte-identically to `client --local` with zero
# MatchCache re-warm (asserted on the serve.warm_pairs counter). An armed
# cluster.install failpoint checks that a failed install surfaces to the
# publisher as a clean kIoError exit (code 8) without touching the live
# generation. Fan-out legs then publish with --targets to both nodes
# (exit 0, one fingerprint everywhere) and with one dead target (partial
# failure, exit 14, per-target diagnosis).
#
# An ingest leg (docs/SERVING.md "Live ingest & freshness SLO") proves
# the write path end to end: `serve --ingest` bootstraps a generation
# from the live feed (drift-triggered auto-publish against the empty
# route), and a crash-exact resume run feeds the same graphs, takes a
# `kill -9` mid-stream, restarts with --resume, blindly re-sends the
# whole range under the same idempotency keys (journaled ids answer
# `duplicate`), and asserts the forced cut's fingerprint is
# byte-identical to an uninterrupted run's.
#
# A fleet leg (docs/ARCHITECTURE.md "Sharded fleet") shards one view set
# across three servers with `shardmap` + `publish --shard-map`, fronts
# them with `gvex_tool frontend`, and diffs every query type — including
# the scatter-gathered coverage/topviews/shardinfo verbs — byte-for-byte
# against `client --local` over the unsharded views. It then kills one
# shard mid-fleet and asserts a scatter comes back flagged with the
# distinct kPartialResult exit (15) — merged-but-incomplete, never a
# silently wrong aggregate — and kills the shard that has a standby to
# prove a point query fails over and still answers byte-identically.
#
# A zoo leg (docs/SERVING.md "Explainer zoo & evaluation gate") trains a
# SYN model, serves it with two `--zoo` explainer routes (a healthy one
# and one deliberately crippled to max_nodes 1), and proves the served
# evaluation gate end to end: `gvex_tool evaluate` streams per-graph rows
# plus a scorecard line that must parse as canonical zoo-scorecard-v1
# JSON, two runs of the same evaluation diff byte-for-byte, the
# `--min-accuracy` gate trips on the crippled route with the distinct
# kEvaluationFailed exit (16), `publish --zoo` hot-swaps the route table
# over the wire, and the server's stats report live zoo.* counters.
#
# Usage: tools/run_server_smoke.sh [path-to-gvex_tool] [leg]
#   default tool: ./build/tools/gvex_tool
#   leg: all (default) | serve | cluster | ingest | fleet | zoo
set -euo pipefail

cd "$(dirname "$0")/.."

TOOL="${1:-./build/tools/gvex_tool}"
LEG="${2:-all}"
case "$LEG" in all|serve|cluster|ingest|fleet|zoo) ;; *)
  echo "unknown leg '$LEG' (want all, serve, cluster, ingest, fleet," \
       "or zoo)" >&2
  exit 2 ;;
esac
if [[ ! -x "$TOOL" ]]; then
  echo "gvex_tool not found at $TOOL (build first)" >&2
  exit 1
fi
TOOL="$(cd "$(dirname "$TOOL")" && pwd)/$(basename "$TOOL")"

WORK="$(mktemp -d)"
SERVER_PID=""
PRIMARY_PID=""
STANDBY_PID=""
SHARD0_PID=""
SHARD1_PID=""
SHARD2_PID=""
FRONT_PID=""
INGEST_PID=""
cleanup() {
  for pid in "$SERVER_PID" "$PRIMARY_PID" "$STANDBY_PID" \
             "$SHARD0_PID" "$SHARD1_PID" "$SHARD2_PID" "$FRONT_PID" \
             "$INGEST_PID"; do
    if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
      kill "$pid" 2>/dev/null || true
    fi
  done
  rm -rf "$WORK"
}
trap cleanup EXIT
cd "$WORK"

fail() { echo "SMOKE FAILED: $*" >&2; exit 1; }

echo "== pipeline: gen -> train -> explain"
"$TOOL" gen --dataset MUT --scale 0.2 --seed 7 --out db.txt
"$TOOL" train --db db.txt --out model.txt --epochs 40
"$TOOL" explain --db db.txt --model model.txt --labels 0,1 --out views.txt

# The planted NO2 toxicophore (README "Querying views").
cat > pattern.txt <<'EOF'
gvexgraph-v1
meta 4 3 0 0
n 0
n 1
n 2
n 2
e 0 1 0
e 1 2 1
e 1 3 1
EOF

SOCK="$WORK/gvex.sock"

start_server() {  # start_server [extra serve flags...]
  "$TOOL" serve --views views.txt --model model.txt --socket "$SOCK" \
    "$@" > serve.log 2>&1 &
  SERVER_PID=$!
  for _ in $(seq 1 100); do
    grep -q "serving on" serve.log && return 0
    kill -0 "$SERVER_PID" 2>/dev/null || break
    sleep 0.1
  done
  cat serve.log >&2
  fail "server did not become ready"
}

stop_server() {
  "$TOOL" client --socket "$SOCK" --type shutdown > /dev/null
  wait "$SERVER_PID" || fail "server exited non-zero after shutdown"
  SERVER_PID=""
}

# The five query types, as client argument lists.
QUERIES=(
  "--type support --label 1 --pattern pattern.txt"
  "--type contains --label 1 --pattern pattern.txt"
  "--type hits --label 1 --pattern pattern.txt --max-embeddings 5"
  "--type discriminative --label 1 --against 0"
  "--type classify --graph-db db.txt --graph-index 3"
)

wait_for_line() {  # wait_for_line <log> <pid> <pattern>
  local log="$1" pid="$2" pattern="$3"
  for _ in $(seq 1 100); do
    grep -q "$pattern" "$log" && return 0
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
  done
  cat "$log" >&2
  fail "did not see '$pattern' in $log"
}

check_queries() {  # check_queries <leg-name>
  local leg="$1"
  for q in "${QUERIES[@]}"; do
    # shellcheck disable=SC2086
    "$TOOL" client --socket "$SOCK" $q > socket.out
    # shellcheck disable=SC2086
    "$TOOL" client --local views.txt --model model.txt $q > local.out
    if ! diff -u local.out socket.out > /dev/null; then
      diff -u local.out socket.out >&2 || true
      fail "$leg: socket answer differs from in-process answer for: $q"
    fi
  done
  echo "   $leg: all ${#QUERIES[@]} query types byte-identical to --local"
}

if [[ "$LEG" == "all" || "$LEG" == "serve" ]]; then

echo "== serve + client round-trip (clean server)"
start_server
[[ "$("$TOOL" client --socket "$SOCK" --type ping)" == "pong" ]] \
  || fail "ping did not answer pong"
check_queries "clean"
"$TOOL" client --socket "$SOCK" --type stats > stats.json
grep -q '"generation"' stats.json || fail "stats dump missing generation"
stop_server

echo "== armed failpoint: injected service delay (answers must not change)"
start_server --fail "serve.exec_delay=delay(30)"
check_queries "delayed"
stop_server

echo "== route quota: bursty route sheds (exit 13), default goodput intact"
# A 1-deep admission budget on route "exp" plus ~100ms of injected
# service time: a 10-client burst on that route must shed most of its
# requests with the distinct quota exit code, while the default route —
# which has no quota — keeps answering byte-identically to --local.
start_server --route-quota "exp=1" --workers 2 --queue 64 \
  --fail "serve.exec_delay=delay(100)"
declare -a BURST_PIDS=()
for _ in $(seq 1 10); do
  "$TOOL" client --socket "$SOCK" --type ping --route exp \
    > /dev/null 2>&1 &
  BURST_PIDS+=("$!")
done
check_queries "quota-burst"   # default route, while the burst is in flight
QUOTA_SHED=0
QUOTA_OK=0
for pid in "${BURST_PIDS[@]}"; do
  set +e
  wait "$pid"
  rc=$?
  set -e
  case "$rc" in
    0)  QUOTA_OK=$((QUOTA_OK + 1)) ;;
    13) QUOTA_SHED=$((QUOTA_SHED + 1)) ;;
    *)  fail "quota burst: unexpected exit $rc (want 0 or 13)" ;;
  esac
done
[[ "$QUOTA_SHED" -ge 1 ]] \
  || fail "quota burst never shed (expected at least one exit 13)"
echo "   quota burst: $QUOTA_SHED shed with exit 13, $QUOTA_OK served"
"$TOOL" client --socket "$SOCK" --type stats > stats.json
grep -q '"serve.quota_shed.exp":[1-9]' stats.json \
  || fail "stats missing a non-zero serve.quota_shed.exp counter"
stop_server

echo "== client --retry: a quota shed is retried, a bare client exits 13"
# limit(2): the first (bare) client consumes one injected shed and must
# exit 13; the retrying client consumes the second on its first attempt
# and lands on the retry.
start_server --fail "serve.admit=error(quota),limit(2)"
set +e
"$TOOL" client --socket "$SOCK" --type ping > /dev/null 2> quota.err
rc=$?
set -e
[[ "$rc" -eq 13 ]] || fail "expected exit 13 (kQuotaExceeded), got $rc"
grep -qi "quota" quota.err || fail "stderr does not name the quota shed"
"$TOOL" client --socket "$SOCK" --type ping --retry 3 \
  --retry-backoff-ms 10 > /dev/null \
  || fail "client --retry did not recover from a quota shed"
stop_server

echo "== armed failpoint: injected admission overload (clean exit 12)"
start_server --fail "serve.admit=error(overloaded),limit(1)"
set +e
"$TOOL" client --socket "$SOCK" --type support --label 1 \
  --pattern pattern.txt > /dev/null 2> overload.err
rc=$?
set -e
[[ "$rc" -eq 12 ]] || fail "expected exit 12 (kOverloaded), got $rc"
grep -qi "overloaded" overload.err || fail "stderr does not name the overload"
# The failpoint was limit(1): the very next request must succeed.
"$TOOL" client --socket "$SOCK" --type support --label 1 \
  --pattern pattern.txt > /dev/null || fail "server unhealthy after shed"
stop_server

fi  # serve leg

if [[ "$LEG" == "all" || "$LEG" == "cluster" ]]; then

echo "== cluster: publish -> standby sync -> primary loss -> warm failover"
# A second, genuinely different generation to publish (higher support
# threshold => different patterns => different content fingerprint).
"$TOOL" explain --db db.txt --model model.txt --labels 0,1 --theta 0.15 \
  --out views2.txt
cmp -s views.txt views2.txt && fail "views2.txt is not a new generation"

PRIMARY_SOCK="$WORK/primary.sock"
STANDBY_SOCK="$WORK/standby.sock"

# Primary serves the first generation; its armed cluster.install
# failpoint (limit 1) makes the FIRST published install tear.
"$TOOL" serve --views views.txt --model model.txt --socket "$PRIMARY_SOCK" \
  --fail "cluster.install=error(io),limit(1)" > primary.log 2>&1 &
PRIMARY_PID=$!
wait_for_line primary.log "$PRIMARY_PID" "serving on"

# Standby: no local views at all, it bootstraps entirely over the wire.
"$TOOL" serve --follow "unix:$PRIMARY_SOCK" --socket "$STANDBY_SOCK" \
  --poll-ms 50 > standby.log 2>&1 &
STANDBY_PID=$!
wait_for_line standby.log "$STANDBY_PID" "following"

gen1_fp() {  # fingerprint of the primary's live generation
  "$TOOL" client --socket "$PRIMARY_SOCK" --type generations \
    | sed -n 's/.*fingerprint \([0-9a-f]\{16\}\).*/\1/p'
}
FP1="$(gen1_fp)"
[[ -n "$FP1" ]] || fail "primary did not report a fingerprint"

standby_stats() { "$TOOL" client --socket "$STANDBY_SOCK" --type stats; }
wait_for_fp() {  # wait_for_fp <fingerprint>
  for _ in $(seq 1 100); do
    standby_stats > standby_stats.json
    grep -q "\"fingerprint\":\"$1\"" standby_stats.json && return 0
    sleep 0.1
  done
  cat standby_stats.json >&2
  fail "standby never converged on fingerprint $1"
}
wait_for_fp "$FP1"
echo "   standby synced generation 1 ($FP1)"

echo "== cluster: torn install surfaces as clean publisher error"
set +e
"$TOOL" publish --views views2.txt --model model.txt \
  --socket "$PRIMARY_SOCK" > publish.out 2> publish.err
rc=$?
set -e
[[ "$rc" -eq 8 ]] || fail "expected publish exit 8 (kIoError), got $rc"
"$TOOL" client --socket "$PRIMARY_SOCK" --type generations | grep -q "$FP1" \
  || fail "torn install replaced the live generation"

echo "== cluster: clean publish replicates to the standby"
"$TOOL" publish --views views2.txt --model model.txt \
  --socket "$PRIMARY_SOCK" > publish.out
grep -q "installed route=default" publish.out \
  || fail "publish did not confirm install: $(cat publish.out)"
FP2="$(sed -n 's/.*fingerprint=\([0-9a-f]\{16\}\).*/\1/p' publish.out)"
[[ -n "$FP2" && "$FP2" != "$FP1" ]] \
  || fail "published fingerprint missing or unchanged"
wait_for_fp "$FP2"
grep -q '"warmed":1' standby_stats.json \
  || fail "standby installed generation 2 but is not warm"

echo "== cluster: fan-out publish converges both nodes (exit 0)"
"$TOOL" publish --views views2.txt --model model.txt \
  --targets "unix:$PRIMARY_SOCK,unix:$STANDBY_SOCK" \
  --retry 1 --retry-backoff-ms 10 > fanout.out
grep -q "published 2/2 targets" fanout.out \
  || fail "fan-out did not confirm 2/2: $(cat fanout.out)"
[[ "$(grep -c "fingerprint $FP2" fanout.out)" -eq 2 ]] \
  || fail "fan-out targets did not converge on $FP2: $(cat fanout.out)"

echo "== cluster: fan-out with one dead target -> partial failure exit 14"
set +e
"$TOOL" publish --views views2.txt --model model.txt \
  --targets "unix:$PRIMARY_SOCK,unix:$WORK/nobody-home.sock" \
  --retry 1 --retry-backoff-ms 10 > fanout.out 2> fanout.err
rc=$?
set -e
[[ "$rc" -eq 14 ]] || fail "expected exit 14 (kPartialFailure), got $rc"
grep -q "published 1/2 targets" fanout.out \
  || fail "partial fan-out did not report 1/2: $(cat fanout.out)"
grep -q "never probed healthy" fanout.out \
  || fail "dead target row missing probe diagnosis: $(cat fanout.out)"

echo "== cluster: primary loss -> standby serves warm, byte-identical"
kill -9 "$PRIMARY_PID" 2>/dev/null || true
wait "$PRIMARY_PID" 2>/dev/null || true
PRIMARY_PID=""

warm_pairs() {
  sed -n 's/.*"serve\.warm_pairs":\([0-9]*\).*/\1/p' standby_stats.json
}
standby_stats > standby_stats.json
WARM_BEFORE="$(warm_pairs)"
[[ -n "$WARM_BEFORE" ]] || fail "stats missing serve.warm_pairs counter"

for q in "${QUERIES[@]}"; do
  # shellcheck disable=SC2086
  "$TOOL" client --socket "$STANDBY_SOCK" $q > socket.out
  # shellcheck disable=SC2086
  "$TOOL" client --local views2.txt --model model.txt $q > local.out
  if ! diff -u local.out socket.out > /dev/null; then
    diff -u local.out socket.out >&2 || true
    fail "failover: standby answer differs from in-process answer for: $q"
  fi
done
echo "   failover: all ${#QUERIES[@]} query types byte-identical to --local"

standby_stats > standby_stats.json
WARM_AFTER="$(warm_pairs)"
[[ "$WARM_AFTER" == "$WARM_BEFORE" ]] \
  || fail "failover re-warmed the MatchCache ($WARM_BEFORE -> $WARM_AFTER)"
echo "   failover: zero MatchCache re-warm (serve.warm_pairs $WARM_AFTER)"

"$TOOL" client --socket "$STANDBY_SOCK" --type shutdown > /dev/null
wait "$STANDBY_PID" || fail "standby exited non-zero after shutdown"
STANDBY_PID=""

fi  # cluster leg

if [[ "$LEG" == "all" || "$LEG" == "ingest" ]]; then

echo "== ingest: live write path bootstraps a generation (auto-publish)"
# No --views at all: the server starts with an empty route, so drift
# begins at 1.0 and the first accepted graph must cut a generation.
ISOCK="$WORK/ingest.sock"
"$TOOL" serve --ingest --model model.txt --socket "$ISOCK" \
  --ingest-journal "$WORK/wal_boot.bin" > ingest_boot.log 2>&1 &
INGEST_PID=$!
wait_for_line ingest_boot.log "$INGEST_PID" "ingesting route"
"$TOOL" ingest --socket "$ISOCK" --graph-db db.txt --from 0 --count 6 \
  --id-base 100 > feed_boot.out
grep -q "published generation=" feed_boot.out \
  || fail "ingest: bootstrap feed never auto-published"
"$TOOL" ingest --socket "$ISOCK" --status > istatus.out
grep -q "ingesting route=default" istatus.out \
  || fail "ingest: status verb did not answer: $(cat istatus.out)"
"$TOOL" client --socket "$ISOCK" --type stats > stats.json
grep -q '"ingest.accepted":[1-9]' stats.json \
  || fail "ingest: stats missing a non-zero ingest.accepted counter"
grep -q '"ingest.publishes":[1-9]' stats.json \
  || fail "ingest: stats missing a non-zero ingest.publishes counter"
grep -q '"generation":[1-9]' stats.json \
  || fail "ingest: auto-publish left no live generation"
echo "   bootstrap feed auto-published a live generation"
"$TOOL" client --socket "$ISOCK" --type shutdown > /dev/null
wait "$INGEST_PID" || fail "ingesting server exited non-zero after shutdown"
INGEST_PID=""

echo "== ingest: crash-exact resume (kill -9 mid-stream, byte-identical cut)"
# Straight run: feed all 12 graphs, force a cut, remember its
# fingerprint. --drift-threshold 2 is unreachable (drift <= 1), so the
# forced cut is the only publish in both runs.
SOCK_A="$WORK/ingest_a.sock"
"$TOOL" serve --ingest --model model.txt --socket "$SOCK_A" \
  --ingest-journal "$WORK/wal_a.bin" --drift-threshold 2 \
  --ingest-cadence 3 > ingest_a.log 2>&1 &
INGEST_PID=$!
wait_for_line ingest_a.log "$INGEST_PID" "ingesting route"
"$TOOL" ingest --socket "$SOCK_A" --graph-db db.txt --from 0 --count 12 \
  --id-base 100 > /dev/null
"$TOOL" ingest --socket "$SOCK_A" --publish > pub_a.out
FP_A="$(sed -n 's/.*fingerprint=\([0-9a-f]*\).*/\1/p' pub_a.out)"
[[ -n "$FP_A" ]] || fail "straight run printed no fingerprint: $(cat pub_a.out)"
"$TOOL" client --socket "$SOCK_A" --type shutdown > /dev/null
wait "$INGEST_PID" || fail "straight-run server exited non-zero"
INGEST_PID=""

# Interrupted run: the armed ingest.feed delay slows each feed to
# ~80ms, so the kill -9 below lands mid-stream deterministically.
SOCK_B="$WORK/ingest_b.sock"
WAL_B="$WORK/wal_b.bin"
"$TOOL" serve --ingest --model model.txt --socket "$SOCK_B" \
  --ingest-journal "$WAL_B" --drift-threshold 2 --ingest-cadence 3 \
  --fail "ingest.feed=delay(80)" > ingest_b.log 2>&1 &
INGEST_PID=$!
wait_for_line ingest_b.log "$INGEST_PID" "ingesting route"
set +e
"$TOOL" ingest --socket "$SOCK_B" --graph-db db.txt --from 0 --count 12 \
  --id-base 100 > feed_b.out 2> /dev/null &
FEEDER=$!
sleep 0.4
kill -9 "$INGEST_PID" 2>/dev/null
wait "$INGEST_PID" 2>/dev/null
wait "$FEEDER" 2>/dev/null   # dies with an io error once the socket drops
set -e
INGEST_PID=""
LANDED="$(grep -c "^ingested seq=" feed_b.out || true)"
[[ "$LANDED" -ge 1 && "$LANDED" -lt 12 ]] \
  || fail "kill -9 was not mid-stream ($LANDED/12 acknowledged)"

# Restart with --resume: journal replay (checkpoint restore + tail
# replay) finishes before the socket opens; the readiness line reports
# what survived. Then blindly re-send the whole range under the same
# idempotency keys — journaled ids answer `duplicate`, everything the
# crash swallowed is fed.
"$TOOL" serve --ingest --model model.txt --socket "$SOCK_B" \
  --ingest-journal "$WAL_B" --resume --drift-threshold 2 \
  --ingest-cadence 3 > ingest_b2.log 2>&1 &
INGEST_PID=$!
wait_for_line ingest_b2.log "$INGEST_PID" "ingesting route"
grep -q "resident 0," ingest_b2.log \
  && fail "--resume restored nothing despite $LANDED journaled feeds"
"$TOOL" ingest --socket "$SOCK_B" --graph-db db.txt --from 0 --count 12 \
  --id-base 100 > refeed.out
DUP="$(grep -c "^duplicate id=" refeed.out || true)"
[[ "$DUP" -ge "$LANDED" ]] \
  || fail "resume forgot idempotency keys ($DUP duplicates, $LANDED landed)"
"$TOOL" ingest --socket "$SOCK_B" --publish > pub_b.out
FP_B="$(sed -n 's/.*fingerprint=\([0-9a-f]*\).*/\1/p' pub_b.out)"
[[ "$FP_B" == "$FP_A" ]] \
  || fail "resumed cut differs from uninterrupted run ($FP_B vs $FP_A)"
echo "   crash-resume cut byte-identical to uninterrupted run ($FP_A)"
echo "   ($LANDED fed pre-crash, $DUP deduplicated on blind re-send)"
"$TOOL" client --socket "$SOCK_B" --type shutdown > /dev/null
wait "$INGEST_PID" || fail "resumed server exited non-zero after shutdown"
INGEST_PID=""

fi  # ingest leg

if [[ "$LEG" == "all" || "$LEG" == "fleet" ]]; then

echo "== fleet: shard map create + describe + owner-of"
S0="$WORK/left.sock"
S1="$WORK/mid.sock"
S2="$WORK/right.sock"
SB0="$WORK/left-standby.sock"
FRONT="$WORK/front.sock"

"$TOOL" shardmap --shards "unix:$S0,unix:$S1,unix:$S2" \
  --standbys "unix:$SB0,-,-" --names "left,mid,right" --out map.bin
"$TOOL" shardmap --shard-map map.bin --describe > map.txt
grep -q "3 shards" map.txt || fail "describe missing shard count"
grep -q "shard 0 left" map.txt || fail "describe missing named shard row"
"$TOOL" shardmap --shard-map map.bin --owner-of 0 | grep -q "shard" \
  || fail "owner-of did not resolve an owner"

echo "== fleet: three shards + left standby, then sharded publish"
# Every shard boots on the full (unsharded) view set; the sharded
# publish below must replace each with its slice — if a slice failed to
# install, the scatter-gathered aggregates would triple-count and the
# byte-diffs against --local would catch it. The left shard carries a
# permanent armed exec delay far above the frontend's hedge budget, so
# every query leg that lands on it must be won by the standby (the
# hedge-win path), yet answers stay byte-identical.
"$TOOL" serve --views views.txt --model model.txt --socket "$S0" \
  --fail "serve.exec_delay=delay(300)" > left.log 2>&1 &
SHARD0_PID=$!
"$TOOL" serve --views views.txt --model model.txt --socket "$S1" \
  > mid.log 2>&1 &
SHARD1_PID=$!
"$TOOL" serve --views views.txt --model model.txt --socket "$S2" \
  > right.log 2>&1 &
SHARD2_PID=$!
wait_for_line left.log "$SHARD0_PID" "serving on"
wait_for_line mid.log "$SHARD1_PID" "serving on"
wait_for_line right.log "$SHARD2_PID" "serving on"

"$TOOL" serve --follow "unix:$S0" --socket "$SB0" --poll-ms 50 \
  > left-standby.log 2>&1 &
STANDBY_PID=$!
wait_for_line left-standby.log "$STANDBY_PID" "following"

"$TOOL" publish --views views.txt --model model.txt --shard-map map.bin \
  --retry 1 --retry-backoff-ms 10 > shardpub.out
grep -q "published 3/3 shards" shardpub.out \
  || fail "sharded publish did not confirm 3/3: $(cat shardpub.out)"

# The standby must converge on left's slice before we lean on failover.
live_fp() {  # live_fp <socket>
  "$TOOL" client --socket "$1" --type stats \
    | sed -n 's/.*"fingerprint":"\([0-9a-f]*\)".*/\1/p'
}
FP_LEFT="$(live_fp "$S0")"
[[ -n "$FP_LEFT" ]] || fail "left shard did not report a fingerprint"
for _ in $(seq 1 100); do
  [[ "$(live_fp "$SB0")" == "$FP_LEFT" ]] && break
  sleep 0.1
done
[[ "$(live_fp "$SB0")" == "$FP_LEFT" ]] \
  || fail "left standby never converged on slice fingerprint $FP_LEFT"
echo "   left standby synced slice $FP_LEFT"

echo "== fleet: frontend scatter-gather byte-identical to --local union"
"$TOOL" frontend --shard-map map.bin --socket "$FRONT" --hedge-ms 50 \
  > frontend.log 2>&1 &
FRONT_PID=$!
wait_for_line frontend.log "$FRONT_PID" "frontend serving on"

FLEET_QUERIES=("${QUERIES[@]}"
  "--type coverage"
  "--type topviews --top-k 2"
  "--type shardinfo")
for q in "${FLEET_QUERIES[@]}"; do
  # shellcheck disable=SC2086
  "$TOOL" client --socket "$FRONT" $q > fleet.out
  # shellcheck disable=SC2086
  "$TOOL" client --local views.txt --model model.txt $q > local.out
  if ! diff -u local.out fleet.out > /dev/null; then
    diff -u local.out fleet.out >&2 || true
    fail "fleet: frontend answer differs from union --local for: $q"
  fi
  # Library mode: the same scatter-gather without the frontend hop.
  # shellcheck disable=SC2086
  "$TOOL" client --shard-map map.bin --hedge-ms 50 $q > lib.out
  if ! diff -u local.out lib.out > /dev/null; then
    diff -u local.out lib.out >&2 || true
    fail "fleet: client --shard-map answer differs from --local for: $q"
  fi
done
echo "   fleet: all ${#FLEET_QUERIES[@]} query types byte-identical to --local"

echo "== fleet: quantized publish serves through the sharded frontend"
# Re-publish the same views with int8 weights. Precision is content, so
# every shard must converge on a NEW fingerprint, and the view-only
# queries must keep answering byte-identically to the fp32 --local union
# (the views are untouched; only the model payload was quantized).
"$TOOL" publish --views views.txt --model model.txt --quantize int8 \
  --shard-map map.bin --retry 1 --retry-backoff-ms 10 > qpub.out
grep -q "published 3/3 shards" qpub.out \
  || fail "quantized sharded publish did not confirm 3/3: $(cat qpub.out)"
FP_LEFT_Q="$(live_fp "$S0")"
[[ -n "$FP_LEFT_Q" && "$FP_LEFT_Q" != "$FP_LEFT" ]] \
  || fail "quantized publish did not change left's fingerprint ($FP_LEFT_Q)"
for _ in $(seq 1 100); do
  [[ "$(live_fp "$SB0")" == "$FP_LEFT_Q" ]] && break
  sleep 0.1
done
[[ "$(live_fp "$SB0")" == "$FP_LEFT_Q" ]] \
  || fail "left standby never converged on quantized slice $FP_LEFT_Q"
"$TOOL" client --socket "$FRONT" --type coverage > fleet.out
"$TOOL" client --local views.txt --model model.txt --type coverage \
  > local.out
diff -u local.out fleet.out > /dev/null \
  || fail "fleet: coverage scatter changed after quantized publish"
# Model-backed queries keep working against the dequantized twin.
"$TOOL" client --socket "$FRONT" --type classify \
  --graph-db db.txt --graph-index 3 > /dev/null \
  || fail "fleet: classify failed on the quantized generation"
echo "   quantized slices live on all shards (fingerprint $FP_LEFT_Q)"

echo "== fleet: point query restricted to one covered graph"
"$TOOL" client --socket "$FRONT" --type contains --label 1 \
  --pattern pattern.txt > contains.out
GI_LEFT=""
while read -r gi; do
  if "$TOOL" shardmap --shard-map map.bin --owner-of "$gi" \
      | grep -q "(left)"; then
    GI_LEFT="$gi"
    break
  fi
done < <(sed -n 's/^  graph \([0-9]*\)$/\1/p' contains.out)
[[ -n "$GI_LEFT" ]] || fail "no covered graph is owned by shard 'left'"
PQ="--type support --label 1 --pattern pattern.txt --graph-index $GI_LEFT"
# shellcheck disable=SC2086
"$TOOL" client --socket "$FRONT" $PQ > fleet.out
# shellcheck disable=SC2086
"$TOOL" client --local views.txt --model model.txt $PQ > point_local.out
diff -u point_local.out fleet.out > /dev/null \
  || fail "fleet: point query to graph $GI_LEFT differs from --local"
echo "   point query (graph $GI_LEFT, owned by left) matches --local"

echo "== fleet: left primary loss -> standby failover, byte-identical"
kill -9 "$SHARD0_PID" 2>/dev/null || true
wait "$SHARD0_PID" 2>/dev/null || true
SHARD0_PID=""
# Point query to the dead shard's graph: the router fails over to the
# standby synchronously and the answer must not change a byte.
# shellcheck disable=SC2086
"$TOOL" client --socket "$FRONT" $PQ > fleet.out
diff -u point_local.out fleet.out > /dev/null \
  || fail "failover: point query answer changed after left died"
# Scatters stay complete too: the left leg is answered by its standby.
"$TOOL" client --socket "$FRONT" --type coverage > fleet.out
"$TOOL" client --local views.txt --model model.txt --type coverage \
  > local.out
diff -u local.out fleet.out > /dev/null \
  || fail "failover: coverage scatter changed after left died"
echo "   left died; standby kept point + scatter answers byte-identical"

echo "== fleet: shard loss without standby -> flagged partial, exit 15"
kill -9 "$SHARD2_PID" 2>/dev/null || true
wait "$SHARD2_PID" 2>/dev/null || true
SHARD2_PID=""
set +e
"$TOOL" client --socket "$FRONT" --type coverage > partial.out 2> partial.err
rc=$?
set -e
[[ "$rc" -eq 15 ]] || fail "expected exit 15 (kPartialResult), got $rc"
grep -q "^coverage " partial.out \
  || fail "partial scatter printed no merged payload: $(cat partial.out)"
grep -q "missing shards right" partial.err \
  || fail "stderr does not name the missing shard: $(cat partial.err)"
grep -q "(2/3 answered)" partial.err \
  || fail "stderr missing shard accounting: $(cat partial.err)"
# The live shards' point queries keep answering cleanly (exit 0).
# shellcheck disable=SC2086
"$TOOL" client --socket "$FRONT" $PQ > /dev/null \
  || fail "point query to a live shard failed after right died"
echo "   right died; scatter flagged partial (exit 15), never wrong"

echo "== fleet: shutdown + hedge accounting"
"$TOOL" client --socket "$FRONT" --type shutdown > /dev/null
wait "$FRONT_PID" || fail "frontend exited non-zero after shutdown"
FRONT_PID=""
wait_for_line frontend.log "$$" "frontend stopped"
grep -q '"hedge_wins":[1-9]' frontend.log \
  || fail "frontend stats report no hedge wins: $(grep stopped frontend.log)"
grep -q '"failovers":[1-9]' frontend.log \
  || fail "frontend stats report no failovers: $(grep stopped frontend.log)"
echo "   $(sed -n 's/^frontend stopped //p' frontend.log)"

"$TOOL" client --socket "$S1" --type shutdown > /dev/null
wait "$SHARD1_PID" || fail "mid shard exited non-zero after shutdown"
SHARD1_PID=""
"$TOOL" client --socket "$SB0" --type shutdown > /dev/null
wait "$STANDBY_PID" || fail "left standby exited non-zero after shutdown"
STANDBY_PID=""

fi  # fleet leg

if [[ "$LEG" == "all" || "$LEG" == "zoo" ]]; then

echo "== zoo: SYN pipeline + two explainer routes behind one server"
"$TOOL" gen --dataset SYN --scale 0.15 --seed 7 --out syn_db.txt
"$TOOL" train --db syn_db.txt --out syn_model.txt --epochs 120
cat > zoo_routes.txt <<'EOF'
gvexzoo-v1
route crippled kind GE seed 0 budget_ms 0 max_nodes 1
route ge kind GE seed 0 budget_ms 0 max_nodes 6
end
EOF
SOCK_Z="$WORK/zoo.sock"
"$TOOL" serve --views views.txt --model syn_model.txt --socket "$SOCK_Z" \
  --zoo zoo_routes.txt > zoo.log 2>&1 &
SERVER_PID=$!
wait_for_line zoo.log "$SERVER_PID" "zoo serving 2 explainer routes"

echo "== zoo: served evaluation streams rows + canonical scorecard"
EVAL_ARGS=(--socket "$SOCK_Z" --scale 0.05 --seed 9 --graphs 2)
"$TOOL" evaluate "${EVAL_ARGS[@]}" --route ge > eval_ge.out \
  || fail "evaluate on the healthy route exited non-zero"
grep -q '^graph 0 label ' eval_ge.out \
  || fail "evaluation streamed no per-graph rows: $(cat eval_ge.out)"
# The gate's own strict parser already validated the scorecard line (a
# malformed one exits non-zero above); pin the canonical shape too.
grep -q '^{"scorecard":"zoo-scorecard-v1","route":"ge","kind":"GE"' \
  eval_ge.out || fail "no canonical scorecard line: $(cat eval_ge.out)"
# Served evaluation is deterministic: a second run diffs byte-for-byte.
"$TOOL" evaluate "${EVAL_ARGS[@]}" --route ge > eval_ge2.out
diff -u eval_ge.out eval_ge2.out > /dev/null \
  || fail "two runs of the same served evaluation differ"
echo "   scorecard: $(grep '^{"scorecard"' eval_ge.out)"

echo "== zoo: gate trips on the crippled route with exit 16"
"$TOOL" evaluate "${EVAL_ARGS[@]}" --route crippled > eval_cr.out \
  || fail "ungated evaluate of the crippled route exited non-zero"
set +e
"$TOOL" evaluate "${EVAL_ARGS[@]}" --route crippled --min-accuracy 0.5 \
  > gate.out 2> gate.err
rc=$?
set -e
[[ "$rc" -eq 16 ]] || fail "expected exit 16 (kEvaluationFailed), got $rc"
grep -q "below the gate" gate.err \
  || fail "gate stderr does not explain the regression: $(cat gate.err)"
# The healthy route clears the same floor the crippled one cannot reach:
# a 1-node explanation recovers at most 1/10 of the planted motifs.
"$TOOL" evaluate "${EVAL_ARGS[@]}" --route crippled --min-accuracy 0.11 \
  > /dev/null 2>&1 && fail "crippled route passed an unreachable floor"
echo "   crippled route gated out (exit 16); payload still printed"

echo "== zoo: publish --zoo hot-swaps the route table over the wire"
cat > zoo_routes2.txt <<'EOF'
gvexzoo-v1
route fresh kind GCF seed 5 budget_ms 0 max_nodes 4
end
EOF
"$TOOL" publish --zoo zoo_routes2.txt --socket "$SOCK_Z" > zoopub.out
grep -q "published 1 zoo routes to 1/1 targets" zoopub.out \
  || fail "publish --zoo did not confirm install: $(cat zoopub.out)"
"$TOOL" client --socket "$SOCK_Z" --type evaluate --text status \
  > zstatus.out
grep -q "route fresh kind GCF" zstatus.out \
  || fail "installed route missing from status: $(cat zstatus.out)"
"$TOOL" evaluate "${EVAL_ARGS[@]}" --route fresh > /dev/null \
  || fail "evaluate on the hot-swapped route failed"
set +e
"$TOOL" evaluate "${EVAL_ARGS[@]}" --route ge > /dev/null 2>&1
rc=$?
set -e
[[ "$rc" -ne 0 ]] || fail "replaced route 'ge' still answered"
echo "   route table replaced live (fresh in, ge out)"

echo "== zoo: stats expose zoo.* observability counters"
"$TOOL" client --socket "$SOCK_Z" --type stats > zstats.out
grep -q '"zoo.evaluations":[1-9]' zstats.out \
  || fail "stats missing zoo.evaluations: $(cat zstats.out)"
grep -q '"zoo.installs":[1-9]' zstats.out \
  || fail "stats missing zoo.installs: $(cat zstats.out)"

"$TOOL" client --socket "$SOCK_Z" --type shutdown > /dev/null
wait "$SERVER_PID" || fail "zoo server exited non-zero after shutdown"
SERVER_PID=""

fi  # zoo leg

echo "server smoke PASSED"
