#!/usr/bin/env bash
# Docs lint (registered as ctest label `docs-lint`): keeps the shipped
# documentation from drifting away from the code it documents.
#
#   1. Every CLI flag named in the cli.h synopsis appears in at least
#      one user-facing doc (README.md, docs/SERVING.md,
#      docs/ARCHITECTURE.md, docs/WIRE_PROTOCOL.md,
#      docs/OBSERVABILITY.md).
#   2. Every StatusCode in status.h maps to an exit-code row in both
#      README.md and docs/WIRE_PROTOCOL.md (the normative table).
#   3. Every intra-repo relative markdown link resolves to a file.
#
# Run from the repo root (ctest sets the working directory); exits
# non-zero listing every violation, so one run shows all drift.
set -uo pipefail

cd "$(dirname "$0")/.."

FAILURES=0
complain() { echo "docs-lint: $*" >&2; FAILURES=$((FAILURES + 1)); }

CLI_DOCS=(README.md docs/SERVING.md docs/ARCHITECTURE.md
          docs/WIRE_PROTOCOL.md docs/OBSERVABILITY.md)
for doc in "${CLI_DOCS[@]}"; do
  [[ -f "$doc" ]] || complain "missing expected doc: $doc"
done

echo "== docs-lint: CLI flags in cli.h vs user-facing docs"
# The synopsis block in cli.h is the flag inventory: every `--flag`
# token it names must be documented somewhere a user would look.
FLAGS="$(grep -oE -- '--[a-z][a-z0-9-]*' src/gvex/cli/cli.h | sort -u)"
[[ -n "$FLAGS" ]] || complain "no flags parsed from src/gvex/cli/cli.h"
for flag in $FLAGS; do
  if ! grep -qF -- "$flag" "${CLI_DOCS[@]}" 2>/dev/null; then
    complain "flag $flag (cli.h) is not documented in any of:" \
             "${CLI_DOCS[*]}"
  fi
done

echo "== docs-lint: StatusCode exit codes vs exit-code tables"
# ExitCodeForStatus maps enum value v -> exit v+1 (0 stays 0); the
# tables must carry one `| <exit> | <kName> |` row per code.
while IFS= read -r line; do
  name="$(echo "$line" | sed -E 's/^ *(k[A-Za-z]+) = ([0-9]+).*/\1/')"
  value="$(echo "$line" | sed -E 's/^ *(k[A-Za-z]+) = ([0-9]+).*/\2/')"
  [[ "$name" == "kOk" ]] && continue
  exit_code=$((value + 1))
  for table in README.md docs/WIRE_PROTOCOL.md; do
    [[ -f "$table" ]] || continue
    if ! grep -qE "^\| *$exit_code *\| *\`?$name\`?" "$table"; then
      complain "$table exit-code table is missing | $exit_code | $name |"
    fi
  done
done < <(grep -E '^ *k[A-Za-z]+ = [0-9]+' src/gvex/common/status.h)

echo "== docs-lint: relative markdown links resolve"
ALL_DOCS="$(ls ./*.md docs/*.md 2>/dev/null)"
for doc in $ALL_DOCS; do
  dir="$(dirname "$doc")"
  # Inline links only: [text](target). External URLs and pure anchors
  # are out of scope; a #fragment on a file link is stripped.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path="${target%%#*}"
    [[ -z "$path" ]] && continue
    if [[ ! -e "$dir/$path" && ! -e "$path" ]]; then
      complain "$doc links to missing file: $target"
    fi
  done < <(grep -oE '\]\([^)]+\)' "$doc" | sed -E 's/^\]\(//; s/\)$//')
done

if [[ "$FAILURES" -gt 0 ]]; then
  echo "docs-lint FAILED with $FAILURES violation(s)" >&2
  exit 1
fi
echo "docs-lint PASSED"
