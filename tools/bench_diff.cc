// Compare two PerfReport JSON files (gvex-bench-v1) timing-by-timing and
// fail when current timings drift beyond a relative tolerance of the
// baseline. Used by tools/run_benchmarks.sh as the regression gate.
//
//   bench_diff <baseline.json> <current.json> [tolerance]
//   bench_diff --validate <report.json>...
//   bench_diff --mem <baseline.json> <current.json> [tolerance]
//
// --validate parses each file and checks the gvex-bench-v1 shape (schema
// tag plus a timings array) without comparing anything; the bench runner
// uses it to fail fast on truncated or malformed reports.
//
// --mem is the memory-regression gate: it compares the *params* whose
// names look like memory metrics (prefix "bytes_" or suffix "_bytes" /
// "_kb") and fails when the current value GREW past tolerance. One-sided
// on purpose — memory shrinking is an improvement, never a regression —
// and param-based because memory metrics are sizes, not seconds, so the
// timing floor above would misclassify them.
//
// tolerance is the allowed relative drift (default 0.30 = +/-30%).
// A timing is skipped when either side is below the absolute floor
// (250 ms): sub-floor rows — budget-bounded anytime searches, scheduler
// quanta — jitter well past any sane tolerance run-to-run, and a row
// oscillating across the floor must not flake the gate. Regressions in
// small rows still surface through the per-report `total` aggregates,
// which are seconds-scale and stable. Timings present in only
// one file are reported but do not fail the gate (bench presets may
// legitimately add or drop rows).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "gvex/obs/json.h"

namespace {

constexpr double kAbsoluteFloorSeconds = 0.25;

const gvex::obs::JsonValue* FindTiming(const gvex::obs::JsonValue& report,
                                       const std::string& name) {
  const gvex::obs::JsonValue* timings = report.Find("timings");
  if (timings == nullptr) return nullptr;
  for (const auto& t : timings->items) {
    const gvex::obs::JsonValue* n = t.Find("name");
    if (n != nullptr && n->string_value == name) return &t;
  }
  return nullptr;
}

int ValidateReports(int count, char** paths) {
  int bad = 0;
  for (int i = 0; i < count; ++i) {
    std::ifstream in(paths[i]);
    if (!in.is_open()) {
      std::fprintf(stderr, "%s: cannot open\n", paths[i]);
      ++bad;
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    auto value = gvex::obs::ParseJson(buf.str());
    if (!value.ok()) {
      std::fprintf(stderr, "%s: %s\n", paths[i],
                   value.status().ToString().c_str());
      ++bad;
      continue;
    }
    const gvex::obs::JsonValue* schema = value->Find("schema");
    if (schema == nullptr || schema->string_value != "gvex-bench-v1") {
      std::fprintf(stderr, "%s: missing or unknown schema tag\n", paths[i]);
      ++bad;
      continue;
    }
    if (value->Find("timings") == nullptr) {
      std::fprintf(stderr, "%s: no timings array\n", paths[i]);
      ++bad;
      continue;
    }
    std::printf("  ok %s\n", paths[i]);
  }
  return bad == 0 ? 0 : 2;
}

bool IsMemoryParam(const std::string& name) {
  auto ends_with = [&](const char* suffix) {
    const size_t n = std::string(suffix).size();
    return name.size() >= n && name.compare(name.size() - n, n, suffix) == 0;
  };
  // Derived ratios (e.g. bytes_per_view_reduction_pct) are excluded:
  // they grow when memory *shrinks*, so the one-sided gate would read
  // an improvement as a regression.
  if (ends_with("_pct")) return false;
  return name.rfind("bytes_", 0) == 0 || ends_with("_bytes") ||
         ends_with("_kb");
}

gvex::Result<gvex::obs::JsonValue> LoadReport(const char* path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return gvex::Status::IoError(std::string("cannot open ") + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return gvex::obs::ParseJson(buf.str());
}

int DiffMemoryParams(const char* base_path, const char* cur_path,
                     double tolerance) {
  gvex::obs::JsonValue reports[2];
  const char* paths[2] = {base_path, cur_path};
  for (int i = 0; i < 2; ++i) {
    auto value = LoadReport(paths[i]);
    if (!value.ok()) {
      std::fprintf(stderr, "%s: %s\n", paths[i],
                   value.status().ToString().c_str());
      return 2;
    }
    reports[i] = std::move(*value);
  }
  const gvex::obs::JsonValue* base_params = reports[0].Find("params");
  const gvex::obs::JsonValue* cur_params = reports[1].Find("params");
  if (base_params == nullptr || cur_params == nullptr) {
    std::fprintf(stderr, "missing params object\n");
    return 2;
  }
  int compared = 0;
  int failed = 0;
  for (const auto& [name, value] : base_params->members) {
    if (!IsMemoryParam(name)) continue;
    const gvex::obs::JsonValue* cur = cur_params->Find(name);
    if (cur == nullptr) {
      std::printf("  ~ %-40s only in baseline\n", name.c_str());
      continue;
    }
    // PerfReport serializes params as strings; parse the numbers back.
    const double base_v = std::atof(value.string_value.c_str());
    const double cur_v = std::atof(cur->string_value.c_str());
    ++compared;
    const double growth =
        base_v > 0.0 ? (cur_v - base_v) / base_v : (cur_v > 0.0 ? 1e9 : 0.0);
    const bool ok = growth <= tolerance;  // shrinking always passes
    if (!ok) ++failed;
    std::printf("  %s %-40s base %14.0f cur %14.0f growth %+7.1f%%\n",
                ok ? "." : "!", name.c_str(), base_v, cur_v, 100.0 * growth);
  }
  std::printf("%d memory params compared, %d grew beyond +%.0f%%\n", compared,
              failed, 100.0 * tolerance);
  return failed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "--mem") {
    if (argc < 4) {
      std::fprintf(stderr,
                   "usage: bench_diff --mem <baseline.json> <current.json> "
                   "[tolerance=0.30]\n");
      return 2;
    }
    const double tolerance = argc > 4 ? std::atof(argv[4]) : 0.30;
    return DiffMemoryParams(argv[2], argv[3], tolerance);
  }
  if (argc >= 2 && std::string(argv[1]) == "--validate") {
    if (argc < 3) {
      std::fprintf(stderr, "usage: bench_diff --validate <report.json>...\n");
      return 2;
    }
    return ValidateReports(argc - 2, argv + 2);
  }
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: bench_diff <baseline.json> <current.json> "
                 "[tolerance=0.30]\n");
    return 2;
  }
  const double tolerance = argc > 3 ? std::atof(argv[3]) : 0.30;

  gvex::obs::JsonValue parsed[2];
  for (int i = 0; i < 2; ++i) {
    std::ifstream in(argv[1 + i]);
    if (!in.is_open()) {
      std::fprintf(stderr, "cannot open %s\n", argv[1 + i]);
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    auto value = gvex::obs::ParseJson(buf.str());
    if (!value.ok()) {
      std::fprintf(stderr, "%s: %s\n", argv[1 + i],
                   value.status().ToString().c_str());
      return 2;
    }
    parsed[i] = std::move(*value);
  }
  const gvex::obs::JsonValue& baseline = parsed[0];
  const gvex::obs::JsonValue& current = parsed[1];

  const gvex::obs::JsonValue* base_timings = baseline.Find("timings");
  if (base_timings == nullptr) {
    std::fprintf(stderr, "%s has no timings array\n", argv[1]);
    return 2;
  }

  int compared = 0;
  int failed = 0;
  int skipped = 0;
  for (const auto& bt : base_timings->items) {
    const gvex::obs::JsonValue* name = bt.Find("name");
    const gvex::obs::JsonValue* base_s = bt.Find("seconds");
    if (name == nullptr || base_s == nullptr) continue;
    const gvex::obs::JsonValue* ct = FindTiming(current, name->string_value);
    if (ct == nullptr) {
      std::printf("  ~ %-40s only in baseline\n", name->string_value.c_str());
      continue;
    }
    const gvex::obs::JsonValue* cur_s = ct->Find("seconds");
    if (cur_s == nullptr) continue;
    const double base_v = base_s->number;
    const double cur_v = cur_s->number;
    if (base_v < kAbsoluteFloorSeconds || cur_v < kAbsoluteFloorSeconds) {
      ++skipped;
      continue;
    }
    ++compared;
    const double drift =
        base_v > 0.0 ? (cur_v - base_v) / base_v
                     : (cur_v > 0.0 ? 1e9 : 0.0);
    const bool ok = std::fabs(drift) <= tolerance;
    if (!ok) ++failed;
    std::printf("  %s %-40s base %10.4fs cur %10.4fs drift %+7.1f%%\n",
                ok ? "." : "!", name->string_value.c_str(), base_v, cur_v,
                100.0 * drift);
  }
  std::printf("%d compared, %d failed, %d below %.0fms floor "
              "(tolerance +/-%.0f%%)\n",
              compared, failed, skipped, 1e3 * kAbsoluteFloorSeconds,
              100.0 * tolerance);
  return failed == 0 ? 0 : 1;
}
