// Compare two PerfReport JSON files (gvex-bench-v1) timing-by-timing and
// fail when current timings drift beyond a relative tolerance of the
// baseline. Used by tools/run_benchmarks.sh as the regression gate.
//
//   bench_diff <baseline.json> <current.json> [tolerance]
//   bench_diff --validate <report.json>...
//
// --validate parses each file and checks the gvex-bench-v1 shape (schema
// tag plus a timings array) without comparing anything; the bench runner
// uses it to fail fast on truncated or malformed reports.
//
// tolerance is the allowed relative drift (default 0.30 = +/-30%).
// A timing is skipped when either side is below the absolute floor
// (250 ms): sub-floor rows — budget-bounded anytime searches, scheduler
// quanta — jitter well past any sane tolerance run-to-run, and a row
// oscillating across the floor must not flake the gate. Regressions in
// small rows still surface through the per-report `total` aggregates,
// which are seconds-scale and stable. Timings present in only
// one file are reported but do not fail the gate (bench presets may
// legitimately add or drop rows).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "gvex/obs/json.h"

namespace {

constexpr double kAbsoluteFloorSeconds = 0.25;

const gvex::obs::JsonValue* FindTiming(const gvex::obs::JsonValue& report,
                                       const std::string& name) {
  const gvex::obs::JsonValue* timings = report.Find("timings");
  if (timings == nullptr) return nullptr;
  for (const auto& t : timings->items) {
    const gvex::obs::JsonValue* n = t.Find("name");
    if (n != nullptr && n->string_value == name) return &t;
  }
  return nullptr;
}

int ValidateReports(int count, char** paths) {
  int bad = 0;
  for (int i = 0; i < count; ++i) {
    std::ifstream in(paths[i]);
    if (!in.is_open()) {
      std::fprintf(stderr, "%s: cannot open\n", paths[i]);
      ++bad;
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    auto value = gvex::obs::ParseJson(buf.str());
    if (!value.ok()) {
      std::fprintf(stderr, "%s: %s\n", paths[i],
                   value.status().ToString().c_str());
      ++bad;
      continue;
    }
    const gvex::obs::JsonValue* schema = value->Find("schema");
    if (schema == nullptr || schema->string_value != "gvex-bench-v1") {
      std::fprintf(stderr, "%s: missing or unknown schema tag\n", paths[i]);
      ++bad;
      continue;
    }
    if (value->Find("timings") == nullptr) {
      std::fprintf(stderr, "%s: no timings array\n", paths[i]);
      ++bad;
      continue;
    }
    std::printf("  ok %s\n", paths[i]);
  }
  return bad == 0 ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "--validate") {
    if (argc < 3) {
      std::fprintf(stderr, "usage: bench_diff --validate <report.json>...\n");
      return 2;
    }
    return ValidateReports(argc - 2, argv + 2);
  }
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: bench_diff <baseline.json> <current.json> "
                 "[tolerance=0.30]\n");
    return 2;
  }
  const double tolerance = argc > 3 ? std::atof(argv[3]) : 0.30;

  gvex::obs::JsonValue parsed[2];
  for (int i = 0; i < 2; ++i) {
    std::ifstream in(argv[1 + i]);
    if (!in.is_open()) {
      std::fprintf(stderr, "cannot open %s\n", argv[1 + i]);
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    auto value = gvex::obs::ParseJson(buf.str());
    if (!value.ok()) {
      std::fprintf(stderr, "%s: %s\n", argv[1 + i],
                   value.status().ToString().c_str());
      return 2;
    }
    parsed[i] = std::move(*value);
  }
  const gvex::obs::JsonValue& baseline = parsed[0];
  const gvex::obs::JsonValue& current = parsed[1];

  const gvex::obs::JsonValue* base_timings = baseline.Find("timings");
  if (base_timings == nullptr) {
    std::fprintf(stderr, "%s has no timings array\n", argv[1]);
    return 2;
  }

  int compared = 0;
  int failed = 0;
  int skipped = 0;
  for (const auto& bt : base_timings->items) {
    const gvex::obs::JsonValue* name = bt.Find("name");
    const gvex::obs::JsonValue* base_s = bt.Find("seconds");
    if (name == nullptr || base_s == nullptr) continue;
    const gvex::obs::JsonValue* ct = FindTiming(current, name->string_value);
    if (ct == nullptr) {
      std::printf("  ~ %-40s only in baseline\n", name->string_value.c_str());
      continue;
    }
    const gvex::obs::JsonValue* cur_s = ct->Find("seconds");
    if (cur_s == nullptr) continue;
    const double base_v = base_s->number;
    const double cur_v = cur_s->number;
    if (base_v < kAbsoluteFloorSeconds || cur_v < kAbsoluteFloorSeconds) {
      ++skipped;
      continue;
    }
    ++compared;
    const double drift =
        base_v > 0.0 ? (cur_v - base_v) / base_v
                     : (cur_v > 0.0 ? 1e9 : 0.0);
    const bool ok = std::fabs(drift) <= tolerance;
    if (!ok) ++failed;
    std::printf("  %s %-40s base %10.4fs cur %10.4fs drift %+7.1f%%\n",
                ok ? "." : "!", name->string_value.c_str(), base_v, cur_v,
                100.0 * drift);
  }
  std::printf("%d compared, %d failed, %d below %.0fms floor "
              "(tolerance +/-%.0f%%)\n",
              compared, failed, skipped, 1e3 * kAbsoluteFloorSeconds,
              100.0 * tolerance);
  return failed == 0 ? 0 : 1;
}
